package server

import (
	"context"
	"fmt"
	"time"

	"icbe"
	"icbe/internal/analysis"
)

// Tier is one rung of the degradation ladder, ordered from the full-fidelity
// configuration down to a parse-and-echo passthrough. A request starts at the
// service's current ceiling (TierFull unless a circuit breaker has pinned it
// lower) and, on a failed or timed-out attempt, retries one rung cheaper
// with capped exponential backoff. The bottom rung cannot fail, so every
// admitted request reaches a terminal response.
type Tier int

// TierPooled is the rung above TierFull: the same full-fidelity
// configuration, preceded by a worker-pool pre-analysis whose portable
// records seed the attempt's summary memo. It exists only when the server
// has a healthy pool and the program is large enough to shard; because
// seeds are replayed pair-for-pair exactly, a pooled attempt renders
// byte-identically to a full one (bodyTier maps the label), and a failed
// pooled attempt descends past TierFull — it already was the full
// configuration. Its value sits above TierFull so the existing tier
// arithmetic (breaker ceilings, descent order, degraded = tier > TierFull)
// is untouched.
const TierPooled Tier = -1

const (
	// TierFull runs both oracles: differential shadow execution (Verify)
	// and the static check layer with fatal refusals (CheckFatal).
	TierFull Tier = iota
	// TierCheckOnly drops the shadow oracle but keeps the static check
	// layer, still fatal on refusal.
	TierCheckOnly
	// TierNoOracles runs the plain interprocedural optimization with no
	// gating oracles beyond ir.Validate.
	TierNoOracles
	// TierIntraOnly falls back to the cheap intraprocedural baseline
	// analysis.
	TierIntraOnly
	// TierPassthrough performs no optimization at all: the compiled program
	// is echoed back. It needs no budget and cannot fail.
	TierPassthrough
)

func (t Tier) String() string {
	switch t {
	case TierPooled:
		return "pooled"
	case TierFull:
		return "full"
	case TierCheckOnly:
		return "check-only"
	case TierNoOracles:
		return "no-oracles"
	case TierIntraOnly:
		return "intra-only"
	case TierPassthrough:
		return "passthrough"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// configure maps the tier onto the optimizer's option set. The fold pass is
// a full-tier feature: it gates every fold on the shadow oracle and a CCP
// re-check, so any rung that drops an oracle drops the fold too.
func (t Tier) configure(o icbe.Options) icbe.Options {
	fold := o.Fold
	o.Verify, o.Check, o.CheckFatal, o.Fold = false, false, false, false
	switch t {
	case TierPooled, TierFull:
		o.Verify, o.Check, o.CheckFatal = true, true, true
		o.Fold = fold
	case TierCheckOnly:
		o.Check, o.CheckFatal = true, true
	case TierNoOracles:
		// plain interprocedural run
	case TierIntraOnly:
		o.Interprocedural = false
	}
	return o
}

// bodyTier maps a tier to the label it carries in response bodies. TierPooled
// renders as "full": the pool only seeds the memo, replay is exact, and the
// byte-determinism contract (§12) requires a pool-seeded response to be
// byte-identical to the in-process one. The pooled/full distinction stays
// visible in /stats (the tiers map and the pool gauges), which is telemetry,
// not result.
func (t Tier) bodyTier() Tier {
	if t == TierPooled {
		return TierFull
	}
	return t
}

// minAttemptBudget is the smallest deadline slice worth starting an
// optimization attempt with; below it the ladder jumps straight to
// passthrough.
const minAttemptBudget = 2 * time.Millisecond

// Attempt records one ladder rung's outcome for the response's attempts
// trace, so a degraded response shows how it got there. It carries no wall
// time: response bodies are cacheable content-addressed artifacts, and every
// field in them must be a pure function of (program, request shape). Timing
// travels in the X-Icbe-Elapsed-Ms response header instead.
type Attempt struct {
	Tier string `json:"tier"`
	// Outcome is "ok", "error" (the optimizer returned an error, e.g. a
	// fatal check refusal), "timeout" (the attempt's deadline slice
	// expired), or "panic" (a panic was contained at the request boundary).
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Failures holds the attempt's contained per-branch failure counts by
	// kind, even when the attempt succeeded.
	Failures map[string]int `json:"failures,omitempty"`
}

// ladderResult is the terminal outcome of one request's descent.
type ladderResult struct {
	tier     Tier
	prog     *icbe.Program // optimized program (the input program for passthrough)
	report   *icbe.Report  // nil for passthrough
	attempts []Attempt
	// memo is the summary memo the winning attempt ran with (nil without a
	// memo factory); its pristine records feed the durable summary store.
	memo *analysis.SummaryMemo
	// kinds aggregates every failure kind observed across the attempts —
	// contained driver failures plus the server-level "panic"/"timeout"
	// classifications — and feeds the per-kind circuit breakers.
	kinds map[string]int
	// retries counts rungs descended past the starting tier.
	retries int
}

// runLadder descends the degradation ladder for one admitted request. The
// context carries the request deadline; each attempt gets half the remaining
// budget so the ladder always reaches passthrough with time to respond.
// memoFor, when non-nil, supplies each attempt a fresh summary memo (seeded
// from the store): fresh per attempt, because a failed attempt may have
// committed partial rounds that must not leak into the next rung's replay.
func (s *Server) runLadder(ctx context.Context, prog *icbe.Program, base icbe.Options, start Tier, memoFor func() *analysis.SummaryMemo) *ladderResult {
	lr := &ladderResult{kinds: make(map[string]int)}
	backoff := s.cfg.BackoffBase
	for tier := start; ; tier++ {
		if tier >= TierPassthrough {
			lr.tier, lr.prog = TierPassthrough, prog
			lr.attempts = append(lr.attempts, Attempt{Tier: TierPassthrough.String(), Outcome: "ok"})
			return lr
		}
		budget := attemptBudget(ctx)
		if budget < minAttemptBudget {
			// Not enough deadline left for a real attempt: the remaining
			// rungs are skipped, passthrough answers.
			lr.retries++
			continue
		}
		if memoFor != nil {
			base.SummaryMemo = memoFor()
		}
		base.SeedRecords = nil
		if tier == TierPooled {
			// The pool pre-analysis gets a slice of this attempt's budget;
			// whatever it returns (possibly nothing — crashed workers, open
			// breaker, deadline) seeds the memo. The attempt itself always
			// proceeds: the pool accelerates, it is never a dependency.
			sctx, scancel := context.WithTimeout(ctx, budget/2)
			base.SeedRecords = s.poolSeed(sctx, prog, base)
			scancel()
		}
		actx, cancel := context.WithTimeout(ctx, budget)
		opt, rep, err, panicked := optimizeAttempt(actx, prog, tier.configure(base))
		expired := actx.Err() != nil
		cancel()

		a := Attempt{Tier: tier.bodyTier().String(), Outcome: "ok"}
		if rep != nil {
			a.Failures = rep.Stats.Failures
			for k, n := range rep.Stats.Failures {
				lr.kinds[k] += n
			}
		}
		switch {
		case panicked || (err != nil && rep == nil):
			// A panic contained at the request boundary (either by our
			// recover or by icbe's): the process survives, this request
			// degrades.
			a.Outcome = "panic"
			lr.kinds["panic"]++
		case err != nil:
			// The optimizer refused the run (fatal check refusal); the
			// contained kinds were merged above.
			a.Outcome = "error"
		case expired:
			a.Outcome = "timeout"
			lr.kinds["timeout"]++
		}
		if err != nil {
			a.Error = err.Error()
		}
		lr.attempts = append(lr.attempts, a)
		if a.Outcome == "ok" {
			lr.tier, lr.prog, lr.report, lr.memo = tier, opt, rep, base.SummaryMemo
			return lr
		}
		lr.retries++
		if tier == TierPooled {
			// A pooled attempt already ran the full configuration (seeds
			// only change warmth), so descend past TierFull: retrying it
			// in-process would fail the same way and would leave an extra
			// "full" attempt in the trace that a pool-less run never has.
			tier++
		}
		s.sleepBackoff(ctx, backoff)
		if backoff *= 2; backoff > s.cfg.BackoffCap {
			backoff = s.cfg.BackoffCap
		}
	}
}

// attemptBudget slices the request's remaining deadline for one attempt:
// half of what is left, so later rungs (and the final response) always have
// budget. A context without a deadline gets an unsliced attempt bounded only
// by cancellation.
func attemptBudget(ctx context.Context) time.Duration {
	deadline, ok := ctx.Deadline()
	if !ok {
		return time.Hour
	}
	return time.Until(deadline) / 2
}

// optimizeAttempt runs one optimization attempt with crash-only isolation:
// a panic escaping the optimizer (which already recovers internally) is
// contained here and reported as a failed attempt, never as a dead process.
func optimizeAttempt(ctx context.Context, prog *icbe.Program, opts icbe.Options) (op *icbe.Program, rep *icbe.Report, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			op, rep, err, panicked = nil, nil, fmt.Errorf("icbe-serve: contained panic during attempt: %v", r), true
		}
	}()
	op, rep, err = prog.OptimizeContext(ctx, opts)
	return op, rep, err, false
}

// sleepBackoff waits out the ladder's retry backoff, cut short by the
// request deadline.
func (s *Server) sleepBackoff(ctx context.Context, d time.Duration) {
	if d <= 0 || ctx.Err() != nil {
		return
	}
	if s.cfg.sleep != nil {
		s.cfg.sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
