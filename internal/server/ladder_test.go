package server

import (
	"errors"
	"testing"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/restructure"
)

// trippy returns a config whose breakers trip on the first failure and stay
// open until the fake clock is advanced past the cooldown.
func trippy(clock *fakeClock) Config {
	return Config{
		Breaker: BreakerConfig{
			Window:        time.Hour,
			TripThreshold: 1,
			Cooldown:      time.Minute,
			MaxCooldown:   time.Hour,
		},
		now: clock.Now,
	}
}

// TestLadderCheckRefusalDegradesWithinRequest forces a cross-check
// disagreement on every conditional: the full and check-only rungs refuse
// fatally, the no-oracles rung answers, and the response is labeled with the
// tier that produced it.
func TestLadderCheckRefusalDegradesWithinRequest(t *testing.T) {
	setFaults(t, restructure.FaultInjection{
		CheckAnswers: func(_ *ir.Program, _ ir.NodeID, ans analysis.AnswerSet) analysis.AnswerSet {
			switch ans {
			case analysis.AnsTrue:
				return analysis.AnsFalse
			case analysis.AnsFalse:
				return analysis.AnsTrue
			}
			return ans
		},
	})
	clock := newFakeClock()
	_, ts := newTestService(t, trippy(clock))

	resp := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true})
	if resp.Tier != "no-oracles" || !resp.Degraded {
		t.Fatalf("tier = %q degraded=%v, want no-oracles/true", resp.Tier, resp.Degraded)
	}
	wantAttempts := []struct{ tier, outcome string }{
		{"full", "error"}, {"check-only", "error"}, {"no-oracles", "ok"},
	}
	if len(resp.Attempts) != len(wantAttempts) {
		t.Fatalf("attempts = %+v, want %v", resp.Attempts, wantAttempts)
	}
	for i, w := range wantAttempts {
		if resp.Attempts[i].Tier != w.tier || resp.Attempts[i].Outcome != w.outcome {
			t.Fatalf("attempt %d = %+v, want %v", i, resp.Attempts[i], w)
		}
	}
	if resp.Report == nil || resp.Report.Optimized == 0 {
		t.Fatalf("degraded rung produced no result: %+v", resp.Report)
	}

	// The check breaker tripped and pins subsequent requests at no-oracles
	// directly — one attempt, no wasted oracle runs.
	resp2 := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true})
	if resp2.Tier != "no-oracles" || len(resp2.Attempts) != 1 {
		t.Fatalf("pinned request: tier %q attempts %+v, want direct no-oracles", resp2.Tier, resp2.Attempts)
	}
	snap := serverStats(t, ts.URL)
	if snap.Breakers["check"].State != "open" {
		t.Fatalf("check breaker = %+v, want open", snap.Breakers["check"])
	}
	if snap.Ceiling != "no-oracles" {
		t.Fatalf("ceiling = %q, want no-oracles", snap.Ceiling)
	}
	if snap.Failures["check"] < 2 {
		t.Fatalf("aggregated check failures = %d, want >= 2", snap.Failures["check"])
	}
	if snap.Retries == 0 || snap.Degraded != 2 {
		t.Fatalf("retries=%d degraded=%d, want >0/2", snap.Retries, snap.Degraded)
	}
}

// TestLadderTimeoutFallsThroughToPassthrough makes every analysis stall past
// the request deadline: the first rung times out, the remaining rungs are
// skipped for lack of budget, and passthrough still answers in time.
func TestLadderTimeoutFallsThroughToPassthrough(t *testing.T) {
	setFaults(t, restructure.FaultInjection{
		Analyze: func(*ir.Program, ir.NodeID) { time.Sleep(40 * time.Millisecond) },
	})
	clock := newFakeClock()
	_, ts := newTestService(t, trippy(clock))

	resp := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true, DeadlineMS: 50})
	if resp.Tier != "passthrough" || !resp.Degraded {
		t.Fatalf("tier = %q degraded=%v, want passthrough/true", resp.Tier, resp.Degraded)
	}
	if resp.Report != nil {
		t.Fatalf("passthrough carried a report: %+v", resp.Report)
	}
	first, last := resp.Attempts[0], resp.Attempts[len(resp.Attempts)-1]
	if first.Tier != "full" || first.Outcome != "timeout" {
		t.Fatalf("first attempt = %+v, want full/timeout", first)
	}
	if last.Tier != "passthrough" || last.Outcome != "ok" {
		t.Fatalf("last attempt = %+v, want passthrough/ok", last)
	}

	// The timeout breaker pins the next request at the cheap
	// intraprocedural tier (which, with the stall still injected, times out
	// again and passes through).
	snap := serverStats(t, ts.URL)
	if snap.Breakers["timeout"].State != "open" || snap.Ceiling != "intra-only" {
		t.Fatalf("timeout breaker %+v ceiling %q, want open/intra-only",
			snap.Breakers["timeout"], snap.Ceiling)
	}
	resp2 := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true, DeadlineMS: 50})
	if resp2.Attempts[0].Tier != "intra-only" {
		t.Fatalf("pinned request first attempt = %+v, want intra-only", resp2.Attempts[0])
	}
}

// TestLadderContainedKindsPinViaBreaker covers the FailureKinds the driver
// contains without failing the request — the attempt succeeds, but the
// breaker for the observed kind trips and pins subsequent requests at the
// tier that avoids it.
func TestLadderContainedKindsPinViaBreaker(t *testing.T) {
	cases := []struct {
		kind    string
		inject  restructure.FaultInjection
		wantPin string
	}{
		{
			kind: "panic",
			inject: restructure.FaultInjection{
				Analyze: func(*ir.Program, ir.NodeID) { panic("injected analysis panic") },
			},
			wantPin: "passthrough",
		},
		{
			kind: "validate",
			inject: restructure.FaultInjection{
				AfterApply: func(*ir.Program, ir.NodeID) error { return errors.New("injected gate failure") },
			},
			wantPin: "passthrough",
		},
		{
			kind: "diff-mismatch",
			inject: restructure.FaultInjection{
				// Mutate a printed constant on the scratch clone: valid
				// graph, wrong output — only the shadow oracle catches it.
				AfterApply: func(scratch *ir.Program, _ ir.NodeID) error {
					for _, n := range scratch.Nodes {
						if n != nil && n.Kind == ir.NPrint && n.Val.IsConst {
							n.Val.Const += 1000
							return nil
						}
					}
					return nil
				},
			},
			wantPin: "check-only",
		},
		{
			kind: "op-growth",
			inject: restructure.FaultInjection{
				// Splice an output-neutral g := g chain after main's entry:
				// more executed operations on every path.
				AfterApply: func(scratch *ir.Program, _ ir.NodeID) error {
					var g ir.VarID = -1
					for _, v := range scratch.Vars {
						if v.Name == "g" && v.IsGlobal() {
							g = v.ID
						}
					}
					if g < 0 {
						return nil
					}
					main := scratch.Procs[scratch.MainProc]
					entry := scratch.Node(main.Entries[0])
					succ := entry.Succs[0]
					prev := entry
					for i := 0; i < 4; i++ {
						n := scratch.NewNode(ir.NAssign, entry.Proc)
						n.Dst = g
						n.RHS = ir.RHS{Kind: ir.RCopy, Src: g}
						n.Line = entry.Line
						n.Preds = []ir.NodeID{prev.ID}
						prev.Succs[0] = n.ID
						n.Succs = []ir.NodeID{succ}
						prev = n
					}
					sn := scratch.Node(succ)
					for i, pr := range sn.Preds {
						if pr == entry.ID {
							sn.Preds[i] = prev.ID
							break
						}
					}
					return nil
				},
			},
			wantPin: "check-only",
		},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			setFaults(t, tc.inject)
			clock := newFakeClock()
			_, ts := newTestService(t, trippy(clock))

			// The faults are contained per branch: the request itself
			// succeeds at the full tier.
			resp := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true})
			if resp.Tier != "full" {
				t.Fatalf("tier = %q, want full (contained failure)", resp.Tier)
			}
			if resp.Attempts[0].Failures[tc.kind] == 0 {
				t.Fatalf("attempt failures = %v, want %s > 0", resp.Attempts[0].Failures, tc.kind)
			}

			// The observed kind tripped its breaker; the next request is
			// pinned at the tier that avoids the failing machinery.
			snap := serverStats(t, ts.URL)
			if st := snap.Breakers[tc.kind]; st.State != "open" || st.Pin != tc.wantPin {
				t.Fatalf("breaker = %+v, want open pin %q", st, tc.wantPin)
			}
			if snap.Ceiling != tc.wantPin {
				t.Fatalf("ceiling = %q, want %q", snap.Ceiling, tc.wantPin)
			}
			resp2 := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true})
			if resp2.Attempts[0].Tier != tc.wantPin {
				t.Fatalf("pinned first attempt = %+v, want %q", resp2.Attempts[0], tc.wantPin)
			}

			// Cooldown elapses, the fault is fixed, a probe runs back at
			// full fidelity and closes the breaker.
			restructure.SetFaultInjection(restructure.FaultInjection{})
			clock.Advance(2 * time.Minute)
			resp3 := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true})
			if resp3.Tier != "full" || resp3.Degraded {
				t.Fatalf("probe response tier = %q, want full", resp3.Tier)
			}
			snap2 := serverStats(t, ts.URL)
			if st := snap2.Breakers[tc.kind]; st.State != "closed" {
				t.Fatalf("breaker after clean probe = %+v, want closed", st)
			}
			if snap2.Ceiling != "full" {
				t.Fatalf("ceiling after recovery = %q, want full", snap2.Ceiling)
			}
		})
	}
}
