package icbe

// The benchmarks regenerate every table and figure of the paper's
// evaluation (§4) and report their key quantities as custom metrics:
//
//	BenchmarkTable1    — benchmark characteristics (Table 1)
//	BenchmarkTable2    — analysis cost (Table 2)
//	BenchmarkFigure9   — statically detectable correlation (Figure 9)
//	BenchmarkFigure10  — per-conditional cost/benefit (Figure 10)
//	BenchmarkFigure11  — reduction vs code growth sweep (Figure 11)
//	BenchmarkHeadline  — the 3–18% / ~2.5× headline claims
//
// plus ablation benchmarks for the design choices called out in DESIGN.md:
// MOD summaries, arithmetic back-substitution, the analysis termination
// limit, and the query-answer cache the paper found counterproductive.

import (
	"fmt"
	"runtime"
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/experiments"
	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/restructure"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(progs.All())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var dyn float64
			for _, r := range rows {
				dyn += r.DynamicPct
			}
			b.ReportMetric(dyn/float64(len(rows)), "dyn-cond-%")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(progs.All(), experiments.PaperTerminationLimit)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			total := 0
			for _, r := range rows {
				total += r.PairsTotal
			}
			b.ReportMetric(float64(total), "node-query-pairs")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(progs.All())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var intra, inter float64
			for _, r := range rows {
				intra += r.IntraSomePct
				inter += r.InterSomePct
			}
			b.ReportMetric(inter/float64(len(rows)), "inter-some-%")
			b.ReportMetric(intra/float64(len(rows)), "intra-some-%")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		intra, inter, err := experiments.Figure10(progs.All())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(intra)), "intra-points")
			b.ReportMetric(float64(len(inter)), "inter-points")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure11(progs.All(),
			experiments.PaperTerminationLimit, experiments.PaperDupLimits)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var best float64
			for _, r := range rows {
				best += r.Inter[len(r.Inter)-1].CondReductionPct
			}
			b.ReportMetric(best/float64(len(rows)), "inter-reduction-%")
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := experiments.ComputeHeadline(progs.All(),
			experiments.PaperTerminationLimit, experiments.PaperDupLimits)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(h.MatchedGrowthRatio, "inter/intra-ratio")
			b.ReportMetric(h.FullCorrMaxPct, "full-corr-max-%")
			b.ReportMetric(h.FullCorrMinPct, "full-corr-min-%")
		}
	}
}

// analyzeAllConds analyzes every analyzable conditional of every workload
// with the given options, returning total pairs processed.
func analyzeAllConds(b *testing.B, opts analysis.Options) int {
	b.Helper()
	total := 0
	for _, w := range progs.All() {
		p, err := ir.Build(w.Source)
		if err != nil {
			b.Fatal(err)
		}
		an := analysis.New(p, opts)
		p.LiveNodes(func(n *ir.Node) {
			if n.Kind == ir.NBranch && n.Analyzable() {
				if res := an.AnalyzeBranch(n.ID); res != nil {
					total += res.PairsProcessed
				}
			}
		})
	}
	return total
}

// BenchmarkAblationModSummaries measures the analysis-cost effect of MOD
// summary information at call sites.
func BenchmarkAblationModSummaries(b *testing.B) {
	base := analysis.Options{Interprocedural: true, TerminationLimit: 1000}
	with := base
	with.ModSummaries = true
	for i := 0; i < b.N; i++ {
		without := analyzeAllConds(b, base)
		withMod := analyzeAllConds(b, with)
		if i == 0 {
			b.ReportMetric(float64(without), "pairs-noMOD")
			b.ReportMetric(float64(withMod), "pairs-MOD")
		}
	}
}

// BenchmarkAblationArithSubst measures how much correlation arithmetic
// back-substitution adds beyond the paper's copy-only substitution.
func BenchmarkAblationArithSubst(b *testing.B) {
	count := func(arith bool) int {
		found := 0
		for _, w := range progs.All() {
			p, err := ir.Build(w.Source)
			if err != nil {
				b.Fatal(err)
			}
			an := analysis.New(p, analysis.Options{
				Interprocedural: true, ModSummaries: true, ArithSubst: arith,
				TerminationLimit: 1000,
			})
			p.LiveNodes(func(n *ir.Node) {
				if n.Kind == ir.NBranch && n.Analyzable() {
					if res := an.AnalyzeBranch(n.ID); res != nil && res.HasCorrelation() {
						found++
					}
				}
			})
		}
		return found
	}
	for i := 0; i < b.N; i++ {
		plain := count(false)
		arith := count(true)
		if i == 0 {
			b.ReportMetric(float64(plain), "correlated-copyonly")
			b.ReportMetric(float64(arith), "correlated-arith")
		}
	}
}

// BenchmarkAblationTerminationLimit sweeps the analysis budget (paper §4
// "Analysis Cost": 1000 pairs per conditional suffices in practice).
func BenchmarkAblationTerminationLimit(b *testing.B) {
	for _, limit := range []int{100, 1000, 0} {
		limit := limit
		name := "unlimited"
		if limit > 0 {
			name = ""
		}
		b.Run(benchName(limit, name), func(b *testing.B) {
			opts := analysis.Options{Interprocedural: true, ModSummaries: true, TerminationLimit: limit}
			for i := 0; i < b.N; i++ {
				pairs := analyzeAllConds(b, opts)
				if i == 0 {
					b.ReportMetric(float64(pairs), "pairs")
				}
			}
		})
	}
}

func benchName(limit int, name string) string {
	if name != "" {
		return name
	}
	return "limit" + itoa(limit)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationQueryCache reproduces the paper's query-caching
// tradeoff: fewer node-query pairs, more memory (the paper found the cache
// counterproductive overall).
func BenchmarkAblationQueryCache(b *testing.B) {
	run := func(cache bool) (pairs int, bytes int64) {
		for _, w := range progs.All() {
			p, err := ir.Build(w.Source)
			if err != nil {
				b.Fatal(err)
			}
			an := analysis.New(p, analysis.Options{
				Interprocedural: true, ModSummaries: true, CacheAnswers: cache,
			})
			p.LiveNodes(func(n *ir.Node) {
				if n.Kind == ir.NBranch && n.Analyzable() {
					if res := an.AnalyzeBranch(n.ID); res != nil {
						pairs += res.PairsProcessed
					}
				}
			})
			bytes += an.CacheBytes()
		}
		return pairs, bytes
	}
	for i := 0; i < b.N; i++ {
		plainPairs, _ := run(false)
		cachedPairs, cacheBytes := run(true)
		if i == 0 {
			b.ReportMetric(float64(plainPairs), "pairs-nocache")
			b.ReportMetric(float64(cachedPairs), "pairs-cached")
			b.ReportMetric(float64(cacheBytes), "cache-bytes")
		}
	}
}

// BenchmarkOptimizeWorkloads measures the end-to-end optimizer on every
// workload (analysis + restructuring, paper configuration).
func BenchmarkOptimizeWorkloads(b *testing.B) {
	for _, w := range progs.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			p, err := Compile(w.Source)
			if err != nil {
				b.Fatal(err)
			}
			opts := DefaultOptions()
			for i := 0; i < b.N; i++ {
				_, rep, _ := p.Optimize(opts)
				if rep.Optimized == 0 {
					b.Fatal("nothing optimized")
				}
			}
		})
	}
}

// BenchmarkInterpreter measures the profiling interpreter on the ref
// inputs (the substrate for all dynamic numbers).
func BenchmarkInterpreter(b *testing.B) {
	for _, w := range progs.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			p, err := Compile(w.Source)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(w.Ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInliningVsICBE compares the paper's §5 alternatives: ICBE
// interprocedural restructuring vs exhaustive inlining followed by
// intraprocedural elimination — same eliminations, different code growth.
func BenchmarkInliningVsICBE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.InliningComparison(progs.All(),
			experiments.PaperTerminationLimit, 200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var icbeG, inlG, icbeR, inlR float64
			for _, r := range rows {
				icbeG += r.ICBEGrowthPct
				inlG += r.InlineGrowthPct
				icbeR += r.ICBEReductionPct
				inlR += r.InlineReductionPct
			}
			n := float64(len(rows))
			b.ReportMetric(icbeG/n, "icbe-growth-%")
			b.ReportMetric(inlG/n, "inline-growth-%")
			b.ReportMetric(icbeR/n, "icbe-reduction-%")
			b.ReportMetric(inlR/n, "inline-reduction-%")
		}
	}
}

// BenchmarkHeuristicComparison measures the paper's suggested profile-
// guided benefit gate against the growth-only limit.
func BenchmarkHeuristicComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HeuristicComparison(progs.All(), experiments.PaperTerminationLimit)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var limG, benG float64
			for _, r := range rows {
				limG += r.LimitGrowthPct
				benG += r.Ben25GrowthPct
			}
			n := float64(len(rows))
			b.ReportMetric(limG/n, "limit-growth-%")
			b.ReportMetric(benG/n, "benefit25-growth-%")
		}
	}
}

// BenchmarkDriverWorkers measures the two-phase optimization driver on the
// whole corpus for serial and NumCPU-wide analysis phases. Clone avoidance
// is the hard acceptance check: the driver must perform strictly fewer
// ir.Clone calls than it performs analyses (the previous driver cloned the
// whole program once per analyzed conditional); wall-clock time per worker
// count is the benchmark's own measurement.
func BenchmarkDriverWorkers(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var clones, analyses, avoided int
			for i := 0; i < b.N; i++ {
				clones, analyses, avoided = 0, 0, 0
				for _, w := range progs.All() {
					p, err := ir.Build(w.Source)
					if err != nil {
						b.Fatal(err)
					}
					dr := restructure.Optimize(p, restructure.DriverOptions{
						Analysis: analysis.Options{Interprocedural: true,
							ModSummaries: true, TerminationLimit: 1000},
						MaxDuplication: 100,
						Workers:        workers,
					})
					clones += dr.Stats.Clones
					analyses += dr.Stats.Analyses
					avoided += dr.Stats.ClonesAvoided
				}
			}
			if clones >= analyses {
				b.Fatalf("clone avoidance ineffective: %d clones for %d analyses", clones, analyses)
			}
			b.ReportMetric(float64(clones), "clones")
			b.ReportMetric(float64(avoided), "clones-avoided")
			b.ReportMetric(float64(analyses), "analyses")
		})
	}
}
