package icbe

import (
	"reflect"
	"strings"
	"testing"
)

const apiDemoSrc = `
	func get() {
		if (input() > 0) { return 0; }
		return 7;
	}
	func main() {
		var r = get();
		if (r == 0) { print(1); } else { print(2); }
	}
`

func TestCompileAndRun(t *testing.T) {
	p, err := Compile(apiDemoSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run([]int64{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 1 {
		t.Errorf("output = %v, want [1]", res.Output)
	}
	if res.Conditionals != 2 {
		t.Errorf("conditionals executed = %d, want 2", res.Conditionals)
	}
	st := p.Stats()
	if st.Procedures != 2 || st.Conditionals != 2 || st.AnalyzableConds != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.SourceLines == 0 || st.Nodes == 0 || st.Operations == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("func main() { x = 1; }"); err == nil {
		t.Error("expected compile error")
	}
	if _, err := Compile("not a program"); err == nil {
		t.Error("expected parse error")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	p, err := Compile(apiDemoSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt, rep, err := p.Optimize(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Optimized == 0 {
		t.Fatal("nothing optimized")
	}
	for _, in := range [][]int64{{5}, {0}, {-2}} {
		r1, err1 := p.Run(in)
		r2, err2 := opt.Run(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1.Output[0] != r2.Output[0] {
			t.Errorf("output mismatch on %v", in)
		}
		if r2.Conditionals >= r1.Conditionals {
			t.Errorf("no dynamic reduction on %v: %d vs %d", in, r2.Conditionals, r1.Conditionals)
		}
		if r2.Operations > r1.Operations {
			t.Errorf("safety violated on %v", in)
		}
	}
	// Find the caller's test in the report: it must be fully correlated.
	full := 0
	for _, c := range rep.Conditionals {
		if c.Full && c.Applied {
			full++
			if !strings.Contains(c.Answers, "T") || !strings.Contains(c.Answers, "F") {
				t.Errorf("full conditional answers = %s", c.Answers)
			}
		}
	}
	if full == 0 {
		t.Error("no fully correlated conditional optimized")
	}
	if rep.PairsTotal == 0 {
		t.Error("no analysis work recorded")
	}
}

func TestIntraBaselineWeaker(t *testing.T) {
	p, _ := Compile(apiDemoSrc)
	_, repIntra, _ := p.Optimize(IntraOptions())
	_, repInter, _ := p.Optimize(DefaultOptions())
	if repIntra.Optimized >= repInter.Optimized {
		t.Errorf("intra %d >= inter %d", repIntra.Optimized, repInter.Optimized)
	}
}

func TestRunProfiled(t *testing.T) {
	p, _ := Compile(apiDemoSrc)
	res, err := p.RunProfiled([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeCounts) == 0 {
		t.Error("no node counts recorded")
	}
}

func TestAnalyzeConditional(t *testing.T) {
	src := "func get() {\n" + // line 1
		"  if (input() > 0) { return 0; }\n" + // line 2
		"  return 7;\n" +
		"}\n" +
		"func main() {\n" +
		"  var r = get();\n" +
		"  if (r == 0) { print(1); } else { print(2); }\n" + // line 7
		"}\n"
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := p.AnalyzeConditional(7, DefaultOptions())
	if !ok {
		t.Fatal("conditional not found on line 7")
	}
	if !rep.Correlated || !rep.Full {
		t.Errorf("report = %+v, want full correlation", rep)
	}
	if rep.Answers != "{T,F}" {
		t.Errorf("answers = %s", rep.Answers)
	}
	if _, ok := p.AnalyzeConditional(99, DefaultOptions()); ok {
		t.Error("found conditional on empty line")
	}
	// Dump and Dot render.
	if !strings.Contains(p.Dump(), "proc main") || !strings.Contains(p.Dot(), "digraph") {
		t.Error("dump/dot broken")
	}
}

func TestPredictionHintsAPI(t *testing.T) {
	src := "func main() {\n" +
		"  var a = input();\n" +
		"  if (a > 0) { print(1); }\n" + // line 3
		"  if (a > 0) { print(2); }\n" + // line 4
		"}\n"
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	hints := p.PredictionHints(4, DefaultOptions())
	if len(hints) == 0 {
		t.Fatal("no hints")
	}
	foundBranch := false
	for _, h := range hints {
		if h.SourceKind == "branch" {
			foundBranch = true
			if h.BranchLine != 3 {
				t.Errorf("hint branch line = %d, want 3", h.BranchLine)
			}
			if h.Outcome != "true" && h.Outcome != "false" {
				t.Errorf("outcome = %q", h.Outcome)
			}
		}
	}
	if !foundBranch {
		t.Errorf("no branch hint in %+v", hints)
	}
	if got := p.PredictionHints(99, DefaultOptions()); got != nil {
		t.Errorf("hints for empty line = %+v", got)
	}
}

func TestInliningPrioritiesAPI(t *testing.T) {
	p, err := Compile(apiDemoSrc)
	if err != nil {
		t.Fatal(err)
	}
	pris := p.InliningPriorities(DefaultOptions(), nil)
	if len(pris) == 0 || pris[0].Procedure != "get" {
		t.Fatalf("priorities = %+v", pris)
	}
	prof, err := p.RunProfiled([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	weighted := p.InliningPriorities(DefaultOptions(), prof)
	if len(weighted) == 0 || weighted[0].Weight == 0 {
		t.Errorf("weighted priorities = %+v", weighted)
	}
}

func TestCompactOption(t *testing.T) {
	p, err := Compile(apiDemoSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Compact = true
	opt, _, _ := p.Optimize(opts)
	optPlain, _, _ := p.Optimize(DefaultOptions())
	if opt.Stats().Nodes >= optPlain.Stats().Nodes {
		t.Errorf("compaction did not shrink nodes: %d vs %d", opt.Stats().Nodes, optPlain.Stats().Nodes)
	}
	for _, in := range [][]int64{{5}, {0}} {
		r1, err1 := optPlain.Run(in)
		r2, err2 := opt.Run(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1.Output[0] != r2.Output[0] || r1.Operations != r2.Operations {
			t.Errorf("compaction changed behavior on %v", in)
		}
	}
}

func TestOptimizeWorkersDeterminismAndStats(t *testing.T) {
	p, err := Compile(apiDemoSrc)
	if err != nil {
		t.Fatal(err)
	}
	serialOpts := DefaultOptions()
	serialOpts.Workers = 1
	serial, srep, err := p.Optimize(serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	parOpts := DefaultOptions()
	parOpts.Workers = 8
	par, prep, err := p.Optimize(parOpts)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Dump() != par.Dump() {
		t.Error("Workers=1 and Workers=8 produced different programs")
	}
	// Reports must agree except for the wall-clock and worker-count fields.
	srep.Stats.Workers, prep.Stats.Workers = 0, 0
	srep.Stats.AnalysisWall, prep.Stats.AnalysisWall = 0, 0
	srep.Stats.ApplyWall, prep.Stats.ApplyWall = 0, 0
	if !reflect.DeepEqual(srep, prep) {
		t.Errorf("reports differ:\n serial %+v\n par    %+v", srep, prep)
	}

	if srep.Stats.Rounds < 1 || srep.Stats.Clones < 1 || srep.Stats.Analyses < 1 {
		t.Errorf("driver stats not populated: %+v", srep.Stats)
	}
	if srep.Truncated {
		t.Error("unexpected truncation on the demo program")
	}
}
