#!/usr/bin/env python3
"""Benchmark trend gate over the committed BENCH_<n>.json trajectory.

The repo commits one BENCH_<n>.json per growth round (emitted by
`icbe-bench -json`), but until now nothing read them back. This script makes
the trajectory load-bearing: given a freshly emitted candidate JSON, it
compares the Table2 benchmark's ms/op against the highest-numbered committed
baseline and fails when the candidate regresses by more than the threshold
(default 20%, tolerant of CI-runner noise). It also prints the whole
committed trend so a slow drift is visible in the CI log even while each
individual step stays under the gate.

Usage:
    scripts/bench_trend.py CANDIDATE.json [--threshold 0.20] [--repo-dir DIR]

Exit status: 0 when within the threshold (or when no baseline exists yet),
1 on regression or malformed input.
"""

import argparse
import json
import re
import sys
from pathlib import Path

BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")
GATED_BENCH = "Table2"


def table2_ms(path):
    """Return Table2 ms/op from one icbe-bench JSON file, or None."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as e:
        print(f"bench_trend: cannot read {path}: {e}", file=sys.stderr)
        return None
    for b in doc.get("benchmarks", []):
        if b.get("name") == GATED_BENCH:
            ns = b.get("ns_per_op")
            if isinstance(ns, (int, float)) and ns > 0:
                return ns / 1e6
            break
    print(f"bench_trend: no {GATED_BENCH} ns_per_op in {path}", file=sys.stderr)
    return None


def committed_baselines(repo_dir):
    """All committed BENCH_<n>.json files as a sorted [(n, path)] list."""
    out = []
    for p in Path(repo_dir).iterdir():
        m = BENCH_RE.match(p.name)
        if m:
            out.append((int(m.group(1)), p))
    return sorted(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("candidate", help="freshly emitted icbe-bench JSON")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional ms/op regression (default 0.20)")
    ap.add_argument("--repo-dir", default=Path(__file__).resolve().parent.parent,
                    help="directory holding the committed BENCH_<n>.json files")
    args = ap.parse_args()

    cand_ms = table2_ms(args.candidate)
    if cand_ms is None:
        return 1

    baselines = committed_baselines(args.repo_dir)
    print(f"bench_trend: {GATED_BENCH} ms/op trajectory")
    for n, path in baselines:
        ms = table2_ms(path)
        print(f"  BENCH_{n:<3} {'?' if ms is None else f'{ms:8.3f}'}")
    print(f"  candidate {cand_ms:8.3f}")

    if not baselines:
        print("bench_trend: no committed baseline yet; gate passes vacuously")
        return 0

    base_n, base_path = baselines[-1]
    base_ms = table2_ms(base_path)
    if base_ms is None:
        return 1

    ratio = cand_ms / base_ms
    limit = 1.0 + args.threshold
    verdict = "PASS" if ratio <= limit else "FAIL"
    print(f"bench_trend: candidate vs BENCH_{base_n}: "
          f"{cand_ms:.3f} / {base_ms:.3f} ms/op = {ratio:.3f}x "
          f"(limit {limit:.2f}x) -> {verdict}")
    if ratio > limit:
        print(f"bench_trend: {GATED_BENCH} regressed more than "
              f"{args.threshold:.0%} against the last committed baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
