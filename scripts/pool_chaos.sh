#!/usr/bin/env bash
# Worker-pool chaos soak for icbe-serve: run a pooled server and a pool-less
# control side by side, drive both with the same mixed load while kill -9-ing
# random worker processes, and require (1) every pooled response byte-identical
# to the control's, (2) the pool back at full strength once the storm stops
# with reconciling shard counters, and (3) a clean drain that leaves no worker
# processes behind. Extends scripts/server_smoke.sh; CI runs it as the
# worker-pool chaos job. Needs only curl and python3.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_CONTROL="${PORT_CONTROL:-18180}"
PORT_POOLED="${PORT_POOLED:-18181}"
ROUNDS="${ROUNDS:-6}"
CONTROL="http://127.0.0.1:$PORT_CONTROL"
POOLED="http://127.0.0.1:$PORT_POOLED"
WORK="$(mktemp -d)"
CPID=""
PPID_POOLED=""
KILLER=""
trap 'kill -9 "$KILLER" "$CPID" "$PPID_POOLED" 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() {
	echo "pool_chaos: FAIL: $*" >&2
	sed 's/^/  control: /' "$WORK/control.log" >&2 || true
	sed 's/^/  pooled:  /' "$WORK/pooled.log" >&2 || true
	exit 1
}

json_get() { # json_get <url> <python-expr over parsed object s>
	curl -fsS "$1" | python3 -c "import json,sys; s=json.load(sys.stdin); print($2)"
}

wait_ready() {
	for _ in $(seq 1 50); do
		curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
		sleep 0.2
	done
	fail "$1 never became healthy"
}

go build -o "$WORK/icbe-serve" ./cmd/icbe-serve

"$WORK/icbe-serve" -addr "127.0.0.1:$PORT_CONTROL" \
	>"$WORK/control.log" 2>&1 &
CPID=$!
"$WORK/icbe-serve" -addr "127.0.0.1:$PORT_POOLED" \
	-pool-workers 2 -pool-min-conds 1 >"$WORK/pooled.log" 2>&1 &
PPID_POOLED=$!
wait_ready "$CONTROL"
wait_ready "$POOLED"

# Wait for the pool to reach full strength before the storm starts.
for _ in $(seq 1 50); do
	live="$(json_get "$POOLED/stats" 's["pool"]["workers_live"]')" || live=0
	[ "$live" = 2 ] && break
	sleep 0.2
done
[ "$live" = 2 ] || fail "pool never reached 2 live workers (got $live)"
BASE_GOROUTINES="$(json_get "$POOLED/stats" 's["goroutines"]')"

# Per-round request corpus: multi-procedure programs with interprocedural
# conditionals (real shard fan-out), varied per round so every request is a
# cache miss on both servers and the pool stays on the hot path.
python3 - "$WORK" "$ROUNDS" <<'EOF'
import json, sys
work, rounds = sys.argv[1], int(sys.argv[2])
def corpus(r):
    inter = f"""
func check(x) {{ if (x == 0) {{ return {r+1}; }} return 0; }}
func clamp(v) {{ if (v > 100) {{ return 100; }} if (v < 0) {{ return 0; }} return v; }}
func main() {{
    var a = 0;
    if (check(a) == {r+1}) {{ print({r}); }}
    if (a == 0) {{ print(20); }}
    print(clamp(a + {r+7}));
    print(clamp(0 - 5));
}}"""
    loopy = f"""
func step(n) {{ if (n > {r+3}) {{ return n - 1; }} return n; }}
func main() {{
    var i = 0;
    var s = 0;
    while (i < {r+5}) {{ s = s + step(i); i = i + 1; }}
    if (s >= 0) {{ print(s); }} print({r+100});
}}"""
    return {"inter": inter, "loopy": loopy}
for r in range(rounds):
    for name, prog in corpus(r).items():
        body = {"program": prog, "run": True}
        open(f"{work}/req-{r}-{name}.json", "w").write(json.dumps(body))
EOF

# The storm: kill -9 a rotating worker child of the pooled server for as long
# as the load runs.
(
	i=0
	while :; do
		pids=($(pgrep -P "$PPID_POOLED" || true))
		if [ "${#pids[@]}" -gt 0 ]; then
			kill -9 "${pids[$((i % ${#pids[@]}))]}" 2>/dev/null && echo x >>"$WORK/kills"
		fi
		i=$((i + 1))
		sleep 0.15
	done
) &
KILLER=$!

for r in $(seq 0 $((ROUNDS - 1))); do
	for req in "$WORK"/req-"$r"-*.json; do
		name="$(basename "$req" .json)"
		curl -fsS -d @"$req" "$CONTROL/optimize" -o "$WORK/$name.control" ||
			fail "$name failed on control"
		curl -fsS -d @"$req" "$POOLED/optimize" -o "$WORK/$name.pooled" ||
			fail "$name failed on pooled server"
		cmp -s "$WORK/$name.control" "$WORK/$name.pooled" ||
			fail "$name: pooled response differs from control under kill storm"
	done
done

kill "$KILLER" 2>/dev/null || true
wait "$KILLER" 2>/dev/null || true
KILLER=""
[ -s "$WORK/kills" ] || fail "storm never killed a worker"
echo "pool_chaos: $(wc -l <"$WORK/kills") worker kills during $ROUNDS rounds"

# Recovery: full strength within the backoff window, counters reconciling,
# the pool demonstrably on the hot path, and no request ever degraded.
for _ in $(seq 1 100); do
	live="$(json_get "$POOLED/stats" 's["pool"]["workers_live"]')" || live=0
	[ "$live" = 2 ] && break
	sleep 0.2
done
[ "$live" = 2 ] || fail "pool did not recover to 2 live workers (got $live)"
python3 - "$POOLED" "$BASE_GOROUTINES" <<'EOF' || fail "pooled /stats reconciliation"
import json, sys, urllib.request
s = json.load(urllib.request.urlopen(sys.argv[1] + "/stats"))
p = s["pool"]
assert p["restarts"] > 0, p
assert p["seed_runs"] > 0 and p["records_returned"] > 0, p
assert p["shards_dispatched"] == p["shards_completed"] + p["shards_degraded"], p
assert s["tiers"].get("pooled", 0) > 0, s["tiers"]
assert s["driver"]["seeds_injected"] > 0, s["driver"]
assert s["degraded"] == 0, s["degraded"]
assert s["shed_total"] == 0, s.get("shed")
assert s["queue_depth"] == 0 and s["in_flight"] == 0
assert s["goroutines"] <= int(sys.argv[2]) + 8, (s["goroutines"], sys.argv[2])
EOF

# Clean drain: SIGTERM both servers, exit 0, and no worker processes left.
kill -TERM "$PPID_POOLED"
rc=0
wait "$PPID_POOLED" || rc=$?
[ "$rc" -eq 0 ] || fail "pooled server exit status $rc after SIGTERM"
grep -q "drained cleanly" "$WORK/pooled.log" || fail "pooled server: no clean-drain log line"
PPID_POOLED=""
kill -TERM "$CPID"
wait "$CPID" || fail "control server did not drain cleanly"
CPID=""
sleep 0.3
if pgrep -f "$WORK/icbe-serve" >/dev/null; then
	fail "worker processes survived the drain: $(pgrep -af "$WORK/icbe-serve")"
fi

echo "pool_chaos: PASS"
