#!/usr/bin/env bash
# End-to-end smoke test for icbe-serve: start the service, drive it with
# concurrent requests (healthy, oversized -> shed, hopeless deadline ->
# degraded), check the health/stats surfaces, then SIGTERM it and require a
# clean drain with no goroutine growth. CI runs this after the unit suite;
# it needs only curl and python3.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
LOG="$WORK/serve.log"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() { echo "server_smoke: FAIL: $*" >&2; sed 's/^/  serve: /' "$LOG" >&2 || true; exit 1; }

json_get() { # json_get <url> <python-expr over parsed object s>
	curl -fsS "$1" | python3 -c "import json,sys; s=json.load(sys.stdin); print($2)"
}

go build -o "$WORK/icbe-serve" ./cmd/icbe-serve

"$WORK/icbe-serve" -addr "127.0.0.1:$PORT" -max-request-bytes 4096 \
	-store-dir "$WORK/store" -cache-entries 256 >"$LOG" 2>&1 &
PID=$!

for _ in $(seq 1 50); do
	curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
	sleep 0.2
done
[ "$(json_get "$BASE/healthz" 's["status"]')" = ok ] || fail "healthz not ok"
curl -fsS "$BASE/readyz" >/dev/null || fail "readyz not ready"
BASE_GOROUTINES="$(json_get "$BASE/stats" 's["goroutines"]')"

# Concurrent load: 8 healthy runs, one oversized body (shed 413 before
# parsing), one 1ms deadline (terminal but degraded to passthrough).
PROG='func main() { var a = 0; if (a == 0) { print(1); } print(2); }'
python3 - "$WORK" "$PROG" <<'EOF'
import json, sys
work, prog = sys.argv[1], sys.argv[2]
open(work + "/ok.json", "w").write(json.dumps({"program": prog, "run": True}))
open(work + "/oversized.json", "w").write(json.dumps({"program": prog + " // " + "x" * 8192}))
open(work + "/deadline.json", "w").write(json.dumps({"program": prog, "deadline_ms": 1, "no_dump": True}))
EOF
pids=()
for i in $(seq 1 8); do
	curl -fsS -d @"$WORK/ok.json" "$BASE/optimize" -o "$WORK/ok$i.out" &
	pids+=($!)
done
curl -s -o "$WORK/oversized.out" -w '%{http_code}' -d @"$WORK/oversized.json" "$BASE/optimize" >"$WORK/oversized.code" &
pids+=($!)
curl -fsS -d @"$WORK/deadline.json" "$BASE/optimize" -o "$WORK/deadline.out" &
pids+=($!)
for p in "${pids[@]}"; do wait "$p" || fail "request failed"; done

[ "$(cat "$WORK/oversized.code")" = 413 ] || fail "oversized request not shed 413 (got $(cat "$WORK/oversized.code"))"
python3 - "$WORK" <<'EOF' || exit 1
import json, sys
work = sys.argv[1]
for i in range(1, 9):
    r = json.load(open(f"{work}/ok{i}.out"))
    assert r["tier"] == "full" and not r["degraded"], f"healthy request degraded: {r['tier']}"
    assert r["output"] == [1, 2], f"wrong output: {r['output']}"
    assert r["report"]["optimized"] >= 1, "nothing optimized"
d = json.load(open(f"{work}/deadline.out"))
assert d["tier"] == "passthrough" and d["degraded"], f"deadline request: {d['tier']}"
EOF

# Cache soak: a fresh program twice — the repeat must be served from the
# store with a byte-identical body — then a one-character mutation, which is
# a different content hash and must miss.
SOAK='func main() { var b = 1; if (b == 1) { print(7); } print(8); }'
python3 - "$WORK" "$SOAK" <<'EOF'
import json, sys
work, soak = sys.argv[1], sys.argv[2]
open(work + "/soak.json", "w").write(json.dumps({"program": soak, "run": True}))
open(work + "/mutant.json", "w").write(json.dumps({"program": soak.replace("print(8)", "print(9)"), "run": True}))
EOF
curl -fsS -D "$WORK/soak1.hdr" -d @"$WORK/soak.json" "$BASE/optimize" -o "$WORK/soak1.out" || fail "soak request 1"
curl -fsS -D "$WORK/soak2.hdr" -d @"$WORK/soak.json" "$BASE/optimize" -o "$WORK/soak2.out" || fail "soak request 2"
curl -fsS -D "$WORK/mutant.hdr" -d @"$WORK/mutant.json" "$BASE/optimize" -o "$WORK/mutant.out" || fail "mutant request"
grep -qi '^x-icbe-cache: miss' "$WORK/soak1.hdr" || fail "first soak request not a miss: $(grep -i x-icbe-cache "$WORK/soak1.hdr")"
grep -qi '^x-icbe-cache: hit-' "$WORK/soak2.hdr" || fail "repeat not served from cache: $(grep -i x-icbe-cache "$WORK/soak2.hdr")"
grep -qi '^x-icbe-cache: miss' "$WORK/mutant.hdr" || fail "mutated program did not miss: $(grep -i x-icbe-cache "$WORK/mutant.hdr")"
cmp -s "$WORK/soak1.out" "$WORK/soak2.out" || fail "cached repeat differs from its original compute"
cmp -s "$WORK/soak1.out" "$WORK/mutant.out" && fail "mutant served the unmutated body"

# /stats must reconcile with what we just did, and the request burst must
# not have leaked goroutines (small tolerance for the HTTP server's own
# connection handling).
sleep 0.3
python3 - "$BASE_GOROUTINES" <<EOF || fail "stats reconciliation"
import json, sys, urllib.request
s = json.load(urllib.request.urlopen("$BASE/stats"))
assert s["requests"] == 13, s["requests"]
assert s["completed"] == 12, s["completed"]
assert s["shed"].get("oversized") == 1, s.get("shed")
assert s["tiers"].get("full") == 11 and s["tiers"].get("passthrough") == 1, s["tiers"]
assert s["queue_depth"] == 0 and s["in_flight"] == 0 and s["in_flight_bytes"] == 0
assert s["ceiling"] == "full" and not s["draining"]
assert s["latency_ms"]["count"] == 12 and s["latency_ms"]["p99"] > 0
assert s["goroutines"] <= int(sys.argv[1]) + 4, (s["goroutines"], sys.argv[1])
st = s["store"]
assert st["disk_enabled"], st
assert s["cache_served"] >= 1 and st["hits_memory"] + st["hits_disk"] + st["coalesced"] >= 1, (s["cache_served"], st)
assert st["quarantined"] == 0 and st["io_errors"] == 0 and st["state"] == "ok", st
EOF

# Graceful shutdown: SIGTERM, clean exit 0, and the drain completion line.
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
[ "$rc" -eq 0 ] || fail "exit status $rc after SIGTERM"
grep -q "drained cleanly" "$LOG" || fail "no clean-drain log line"

echo "server_smoke: PASS"
