// Hints demonstrates the paper's §5 side applications of the correlation
// analysis, without transforming the program:
//
//   - branch-prediction directives: for a correlated conditional, report
//     which earlier program point decides its outcome (so a predictor can
//     key on that branch instead of tracking the last k outcomes);
//   - correlation-directed inlining priorities: rank procedures by the
//     correlation that crosses their boundaries, the order in which a
//     conventional inliner should integrate them.
//
// Run with:
//
//	go run ./examples/hints
package main

import (
	"fmt"
	"log"
	"strings"

	"icbe"
)

const src = `
var errors;

func validate(v) {
	if (v < 0) { errors = errors + 1; return 0; }
	if (v > 1000) { errors = errors + 1; return 0; }
	return 1;
}

func process(v) {
	var ok = validate(v);
	if (ok == 0) { return -1; }
	var r = v;
	if (v > 500) { r = v - 500; }
	return r;
}

func main() {
	errors = 0;
	var v = input();
	var total = 0;
	while (v != -1) {
		var r = process(v);
		if (r >= 0) { total = total + r; }
		v = input();
	}
	print(total);
	print(errors);
}
`

func main() {
	prog, err := icbe.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Prediction hints for the `ok == 0` test inside process.
	okLine := 0
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, "if (ok == 0)") {
			okLine = i + 1
		}
	}
	fmt.Printf("prediction hints for the validation re-test (line %d):\n", okLine)
	for _, h := range prog.PredictionHints(okLine, icbe.DefaultOptions()) {
		where := "same procedure"
		if h.Interprocedural {
			where = "across the call"
		}
		extra := ""
		if h.BranchLine > 0 {
			extra = fmt.Sprintf(" — predict from the branch on line %d", h.BranchLine)
		}
		fmt.Printf("  outcome %-5s decided by %-15s at line %2d (%s)%s\n",
			h.Outcome, h.SourceKind, h.SourceLine, where, extra)
	}

	// Inlining priorities, weighted by a profiled run.
	profiled, err := prog.RunProfiled([]int64{100, -5, 700, 2000, 3, -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncorrelation-directed inlining priorities (profile-weighted):")
	for _, pr := range prog.InliningPriorities(icbe.DefaultOptions(), profiled) {
		fmt.Printf("  %-10s crossing conditionals %d, weight %d\n",
			pr.Procedure, pr.Conditionals, pr.Weight)
	}

	// And, for reference, what ICBE itself would do.
	opt, rep, err := prog.Optimize(icbe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	after, _ := opt.Run([]int64{100, -5, 700, 2000, 3, -1})
	before, _ := prog.Run([]int64{100, -5, 700, 2000, 3, -1})
	fmt.Printf("\nICBE: optimized %d conditionals, executed conditionals %d -> %d\n",
		rep.Optimized, before.Conditionals, after.Conditionals)
}
