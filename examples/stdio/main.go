// Stdio walks through the paper's Figure 1: a character loop over
// fgetc/fillbuf from a stdio-like library. In the original loop, each
// character executes several conditionals (the EOF test in the caller, the
// buffer test in fgetc, the refill test); after ICBE the caller's EOF test
// is fully eliminated — fgetc's exits are split so the byte path returns
// directly into the loop body and the EOF path directly to the loop exit.
//
// Run with:
//
//	go run ./examples/stdio
package main

import (
	"fmt"
	"log"
	"strings"

	"icbe"
)

const src = `
var cnt;

// fillbuf refills the buffer; it returns -1 at end of input (the paper's
// node b is the only path on which the caller's EOF test survives).
func fillbuf() {
	var n = input();
	if (n <= 0) { return -1; }
	cnt = n;
	return 0;
}

// fgetc returns the next character (a byte, hence >= 0: the paper's node c
// resolves the query to FALSE) or the EOF sentinel -1 (node a: TRUE).
func fgetc() {
	if (cnt <= 0) {
		var r = fillbuf();
		if (r == -1) { return -1; }
	}
	cnt = cnt - 1;
	var c = byte(input());
	return c;
}

// main is the paper's MAIN: while ((c = fgetc(f)) != EOF) ...
func main() {
	var c = fgetc();
	while (c != -1) {
		print(c);
		c = fgetc();
	}
}
`

func main() {
	prog, err := icbe.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// The input stream interleaves chunk sizes (read by fillbuf) and
	// character data (read by fgetc): 3 characters, then 2, then EOF.
	input := []int64{3, 'i', 'c', 'b', 2, 'e', '!', 0}

	// Analyze the EOF test (the paper's P0) without transforming: it is
	// the `while (c != -1)` loop condition in main.
	p0Line := 0
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, "while (c != -1)") {
			p0Line = i + 1
		}
	}
	if rep, ok := prog.AnalyzeConditional(p0Line, icbe.DefaultOptions()); ok {
		fmt.Printf("P0 `c != -1` analysis: answers %s, full correlation %v\n", rep.Answers, rep.Full)
		fmt.Println("  TRUE along the byte-returning path, FALSE along the EOF path —")
		fmt.Println("  P0 is redundant on every path and can be eliminated (Figure 1(c)).")
	}

	before, err := prog.Run(input)
	if err != nil {
		log.Fatal(err)
	}
	opt, report, err := prog.Optimize(icbe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	after, err := opt.Run(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noptimized %d conditionals\n", report.Optimized)
	fmt.Printf("output unchanged: %v\n", fmt.Sprint(before.Output) == fmt.Sprint(after.Output))
	fmt.Printf("executed conditionals per run: %d -> %d\n", before.Conditionals, after.Conditionals)
	fmt.Printf("executed operations:           %d -> %d\n", before.Operations, after.Operations)
	fmt.Println("\nOptimized interprocedural CFG (note the split entries/exits of fgetc):")
	fmt.Print(opt.Dump())
}
