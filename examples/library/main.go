// Library demonstrates the paper's "library procedures" discussion (§5):
// procedures from the same library module are called one after another,
// propagating values that each procedure re-tests. Entry splitting creates
// a second, check-free entry into the callee for call sites where the
// check's outcome is known, and exit splitting returns each outcome to its
// own continuation — the same mechanism the paper proposes for pre-split
// library interfaces (e.g. a separate malloc exit for NULL).
//
// Run with:
//
//	go run ./examples/library
package main

import (
	"fmt"
	"log"

	"icbe"
)

const src = `
// A tiny "libm-style" module: every entry point validates its argument.
var errs;

func checkpos(x) {
	if (x <= 0) { errs = errs + 1; return 0; }
	return 1;
}

// isqrt validates, then iterates. Callers that already validated pay the
// check again — until entry splitting gives them a check-free entry.
func isqrt(x) {
	var ok = checkpos(x);
	if (ok == 0) { return -1; }
	var r = 0;
	while ((r + 1) * (r + 1) <= x) { r = r + 1; }
	return r;
}

// ilog2 has the same interface discipline.
func ilog2(x) {
	var ok = checkpos(x);
	if (ok == 0) { return -1; }
	var l = 0;
	while (x > 1) { x = x / 2; l = l + 1; }
	return l;
}

func main() {
	errs = 0;
	var v = input();
	var acc = 0;
	while (v != -1) {
		// The same value flows through both library calls: after isqrt
		// validated it, ilog2's validation is redundant — and both
		// validations re-test what checkpos already decided.
		var s = isqrt(v);
		if (s >= 0) {
			var l = ilog2(v);
			acc = acc + s + l;
		}
		v = input();
	}
	print(acc);
	print(errs);
}
`

func main() {
	prog, err := icbe.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	input := []int64{16, 100, 7, -5, 33, 0, 1, -1}

	before, err := prog.Run(input)
	if err != nil {
		log.Fatal(err)
	}
	opt, report, err := prog.Optimize(icbe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	after, err := opt.Run(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimized %d conditionals (analysis: %d node-query pairs)\n",
		report.Optimized, report.PairsTotal)
	for _, c := range report.Conditionals {
		if c.Applied {
			fmt.Printf("  line %2d: answers %-7s full=%v\n", c.Line, c.Answers, c.Full)
		}
	}

	// Count the split entries/exits the optimization created.
	g := opt.Graph()
	for _, pr := range g.Procs {
		if len(pr.Entries) > 1 || len(pr.Exits) > 1 {
			fmt.Printf("  proc %-9s now has %d entries, %d exits\n", pr.Name, len(pr.Entries), len(pr.Exits))
		}
	}

	fmt.Printf("output: %v -> %v\n", before.Output, after.Output)
	fmt.Printf("executed conditionals: %d -> %d\n", before.Conditionals, after.Conditionals)
	fmt.Printf("executed operations:   %d -> %d\n", before.Operations, after.Operations)
}
