// Quickstart: compile a MiniC program, apply interprocedural conditional
// branch elimination, and compare the executions before and after.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"icbe"
)

// The callee selects its return value with an if-statement; the caller
// tests that value again — the paper's flagship correlation pattern. ICBE
// splits the exit of classify so each return path jumps straight to the
// right arm in main, eliminating the caller's test entirely.
const src = `
func classify(v) {
	if (v < 0) { return -1; }
	if (v == 0) { return 0; }
	return 1;
}

func main() {
	var v = input();
	while (v != -999) {
		var k = classify(v);
		if (k == 0) { print(100); }
		else if (k == -1) { print(200); }
		else { print(300); }
		v = input();
	}
}
`

func main() {
	prog, err := icbe.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Stats()
	fmt.Printf("compiled: %d procedures, %d operations, %d conditionals\n",
		st.Procedures, st.Operations, st.Conditionals)

	input := []int64{5, -3, 0, 12, -1, 0, 7, -999}

	before, err := prog.Run(input)
	if err != nil {
		log.Fatal(err)
	}

	opt, report, err := prog.Optimize(icbe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized %d conditionals; static operations %d -> %d\n",
		report.Optimized, report.OperationsBefore, report.OperationsAfter)
	for _, c := range report.Conditionals {
		if c.Applied {
			fmt.Printf("  line %2d: answers %-7s full=%-5v dup-estimate %d\n",
				c.Line, c.Answers, c.Full, c.DupEstimate)
		}
	}

	after, err := opt.Run(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("output before: %v\n", before.Output)
	fmt.Printf("output after:  %v\n", after.Output)
	fmt.Printf("executed conditionals: %d -> %d (%.0f%% removed)\n",
		before.Conditionals, after.Conditionals,
		100*float64(before.Conditionals-after.Conditionals)/float64(before.Conditionals))
	fmt.Printf("executed operations:   %d -> %d (never increases: the safety guarantee)\n",
		before.Operations, after.Operations)
}
