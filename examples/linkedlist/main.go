// Linkedlist demonstrates the paper's linked-list motivation: a procedure
// that removes an element from a list tests whether the list is empty and
// returns nil if so; the caller performs an identical test on the returned
// value. The later test is fully correlated with the earlier one, and ICBE
// removes it by splitting the exits of the remove procedure. The paper
// highlights this case because when lists are short, the caller's test is
// hard to predict in hardware — yet statically removable.
//
// Run with:
//
//	go run ./examples/linkedlist
package main

import (
	"fmt"
	"log"

	"icbe"
)

const src = `
// A work queue of cons cells: cell[0] = value, cell[1] = next.
var queue;

func push(v) {
	var c = alloc(2);
	c[0] = v;
	c[1] = queue;
	queue = c;
	return 0;
}

// pop removes the head and returns it, or nil (0) when the queue is empty
// — the test every caller repeats.
func pop() {
	var head = queue;
	if (head == 0) { return 0; }
	queue = head[1];
	return head;
}

func main() {
	// Fill the queue from the input.
	var v = input();
	while (v != -1) {
		push(v);
		v = input();
	}
	// Drain it: the (item == 0) test is fully correlated with pop's
	// internal empty test (nil on one path, a dereferenced — hence
	// non-nil — pointer on the other).
	var sum = 0;
	var n = 0;
	var item = pop();
	while (item != 0) {
		sum = sum + item[0];
		n = n + 1;
		item = pop();
	}
	print(n);
	print(sum);
}
`

func main() {
	prog, err := icbe.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	input := []int64{10, 20, 30, 40, -1}

	before, err := prog.Run(input)
	if err != nil {
		log.Fatal(err)
	}
	opt, report, err := prog.Optimize(icbe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	after, err := opt.Run(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimized %d conditionals\n", report.Optimized)
	for _, c := range report.Conditionals {
		if c.Analyzable {
			fmt.Printf("  line %2d: answers %-7s full=%-5v applied=%v\n",
				c.Line, c.Answers, c.Full, c.Applied)
		}
	}
	fmt.Printf("output: %v -> %v\n", before.Output, after.Output)
	fmt.Printf("executed conditionals: %d -> %d\n", before.Conditionals, after.Conditionals)
	fmt.Printf("executed operations:   %d -> %d\n", before.Operations, after.Operations)
}
