// Command icbe-serve runs the resilient optimization service: a long-running
// HTTP/JSON front end that compiles and optimizes MiniC programs with
// admission control, per-request deadlines, a degradation ladder, and
// per-failure-kind circuit breakers (see internal/server).
//
// Usage:
//
//	icbe-serve [flags]
//
// Endpoints:
//
//	POST /optimize        {"program": "...", "deadline_ms": 2000, "input": [1,2]}
//	POST /optimize-batch  {"items": [{...}, {...}]} — per-item isolation
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining)
//	GET  /stats           aggregate service statistics
//
// With -pool-workers > 0 the server keeps a pool of disposable worker
// processes (re-execs of this binary unless -worker-bin overrides) that
// pre-analyze large programs per-procedure; worker crashes only cost warmth,
// never change response bytes.
//
// SIGTERM or SIGINT starts a graceful drain: admission stops, in-flight
// requests finish by their deadlines (cancelled cooperatively after
// -drain-timeout), then the process exits 0. A second signal exits
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"icbe/internal/pool"
	"icbe/internal/server"
)

func main() {
	// A re-exec'd worker never reaches flag parsing: it speaks the pool
	// protocol on stdin/stdout and exits when the supervisor closes the pipe.
	pool.MaybeWorkerMain()
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInFlight = flag.Int("max-inflight", 4, "concurrent optimizations")
		maxQueue    = flag.Int("max-queue", 64, "admission queue depth beyond in-flight; excess is shed 429")
		maxReqBytes = flag.Int64("max-request-bytes", 1<<20, "request body cap; larger requests are shed 413")
		maxMemBytes = flag.Int64("max-inflight-bytes", 256<<20, "admitted memory-estimate cap; excess is shed 429")
		deadline    = flag.Duration("deadline", 5*time.Second, "default per-request optimization deadline")
		maxDeadline = flag.Duration("max-deadline", 30*time.Second, "clamp on client-requested deadlines")
		workers     = flag.Int("workers", 2, "driver analysis workers per request")
		drainTO     = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight work on SIGTERM before cooperative cancellation")
		brkWindow   = flag.Duration("breaker-window", 10*time.Second, "circuit-breaker failure-rate window")
		brkTrip     = flag.Int("breaker-trip", 5, "failures within the window that trip a breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "initial breaker cooldown before a half-open probe")
		brkMaxCool  = flag.Duration("breaker-max-cooldown", 30*time.Second, "breaker cooldown cap under repeated failed probes")
		cacheSize   = flag.Int("cache-entries", 1024, "in-memory result cache entries; 0 disables the memory layer")
		storeDir    = flag.String("store-dir", "", "durable result+summary store directory; empty disables the disk layer")
		poolWorkers = flag.Int("pool-workers", 0, "analysis worker processes; 0 keeps analysis in-process")
		workerBin   = flag.String("worker-bin", "", "worker executable (empty re-execs this binary)")
		poolMin     = flag.Int("pool-min-conds", 8, "minimum analyzable conditionals before a program is pool-sharded")
		batchItems  = flag.Int("max-batch-items", 16, "item cap per /optimize-batch request")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: icbe-serve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	svc := server.New(server.Config{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		MaxRequestBytes:  *maxReqBytes,
		MaxInFlightBytes: *maxMemBytes,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		Workers:          *workers,
		CacheEntries:     *cacheSize,
		StoreDir:         *storeDir,
		PoolWorkers:      *poolWorkers,
		WorkerBin:        *workerBin,
		PoolMinConds:     *poolMin,
		MaxBatchItems:    *batchItems,
		Breaker: server.BreakerConfig{
			Window:        *brkWindow,
			TripThreshold: *brkTrip,
			Cooldown:      *brkCooldown,
			MaxCooldown:   *brkMaxCool,
		},
	})
	if snap := svc.Stats(); *storeDir != "" && (snap.Store == nil || !snap.Store.DiskEnabled) {
		// A broken store directory degrades the service to compute-only; it
		// must never stop it from starting.
		log.Printf("icbe-serve: warning: durable store at %s unavailable, serving compute-only", *storeDir)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("icbe-serve: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("icbe-serve: %v", err)
	case sig := <-sigCh:
		log.Printf("icbe-serve: %v received, draining (grace %v; signal again to force exit)", sig, *drainTO)
	}
	go func() {
		sig := <-sigCh
		log.Printf("icbe-serve: second %v, exiting immediately", sig)
		os.Exit(130)
	}()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("icbe-serve: drain grace expired; in-flight work cancelled cooperatively")
	}
	// In-flight handlers have all returned; shut the listener down.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("icbe-serve: shutdown: %v", err)
	}
	log.Printf("icbe-serve: drained cleanly")
}
