// Command icbe compiles a MiniC program, optionally applies interprocedural
// conditional branch elimination, and runs or inspects the result.
//
// Usage:
//
//	icbe [flags] program.mc
//
// Examples:
//
//	icbe -stats program.mc                 # size statistics
//	icbe -run -input 1,2,3 program.mc      # execute
//	icbe -optimize -run -input 1 program.mc
//	icbe -optimize -report program.mc      # per-conditional analysis report
//	icbe -optimize -intra program.mc       # intraprocedural baseline
//	icbe -dump program.mc                  # ICFG listing
//	icbe -dot program.mc | dot -Tsvg       # ICFG drawing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"icbe"
	"icbe/internal/reportjson"
)

func main() {
	var (
		doDump   = flag.Bool("dump", false, "print the ICFG as text")
		doDot    = flag.Bool("dot", false, "print the ICFG in Graphviz dot format")
		doStats  = flag.Bool("stats", false, "print program size statistics")
		doRun    = flag.Bool("run", false, "execute the program")
		doOpt    = flag.Bool("optimize", false, "apply conditional branch elimination first")
		doReport = flag.Bool("report", false, "print the per-conditional optimization report")
		intra    = flag.Bool("intra", false, "use the intraprocedural baseline instead of ICBE")
		dupLimit = flag.Int("limit", 0, "per-conditional duplication limit N (0 = unlimited)")
		termLim  = flag.Int("term", 1000, "analysis termination limit in node-query pairs (0 = unlimited)")
		inputStr = flag.String("input", "", "comma-separated int64 input stream for -run")
		hints    = flag.Int("hints", 0, "print branch-prediction hints for the conditional on this line")
		inliner  = flag.Bool("inline-priorities", false, "rank procedures for correlation-directed inlining")
		compact  = flag.Bool("compact", false, "contract synthetic no-op nodes after optimization")
		workers  = flag.Int("workers", runtime.NumCPU(), "analysis worker goroutines for -optimize (1 = serial)")
		verify   = flag.Bool("verify", false, "differentially shadow-execute after each applied restructuring; violations roll back")
		chk      = flag.Bool("check", false, "cross-check answers against a forward SCCP oracle and lint each applied restructuring; violations roll back")
		chkFatal = flag.Bool("check-fatal", false, "like -check, but exit nonzero when the check layer refused any conditional")
		doFold   = flag.Bool("fold", false, "after the correlation rounds, fold residual branches the SCCP oracle proves constant; every fold is gated and vetoes roll back")
		timeout  = flag.Duration("timeout", 0, "overall -optimize deadline, e.g. 500ms (0 = none)")
		branchTO = flag.Duration("branch-timeout", 0, "per-conditional analysis deadline (0 = none)")
		jsonOut  = flag.Bool("json", false, "emit the optimization report as JSON on stdout (with -optimize; replaces the text report)")
		strict   = flag.Bool("strict", false, "exit 3 when any conditional failed a gate or work was truncated")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: icbe [flags] program.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := icbe.Compile(string(src))
	if err != nil {
		fatal(err)
	}

	// One options value shared by every mode, so -intra/-term/-limit apply
	// to -hints and -inline-priorities too, not just -optimize.
	opts := icbe.DefaultOptions()
	if *intra {
		opts = icbe.IntraOptions()
	}
	opts.MaxDuplication = *dupLimit
	opts.TerminationLimit = *termLim
	opts.Compact = *compact
	opts.Workers = *workers
	opts.Verify = *verify
	opts.Check = *chk
	opts.CheckFatal = *chkFatal
	opts.Fold = *doFold
	opts.Timeout = *timeout
	opts.BranchTimeout = *branchTO

	input, err := parseInput(*inputStr)
	if err != nil {
		fatal(err)
	}
	if (*verify || *doFold) && len(input) > 0 {
		// The -input stream doubles as a workload vector for the shadow
		// oracle (which also gates every fold), alongside the built-in ones.
		opts.VerifyInputs = [][]int64{input}
	}

	if *doStats {
		st := prog.Stats()
		fmt.Printf("lines        %d\nprocedures   %d\nnodes        %d\noperations   %d\nconditionals %d (analyzable %d)\n",
			st.SourceLines, st.Procedures, st.Nodes, st.Operations, st.Conditionals, st.AnalyzableConds)
	}

	if *hints > 0 {
		hs := prog.PredictionHints(*hints, opts)
		if len(hs) == 0 {
			fmt.Printf("no correlation sources for a conditional on line %d\n", *hints)
		}
		for _, h := range hs {
			where := "intraprocedural"
			if h.Interprocedural {
				where = "interprocedural"
			}
			extra := ""
			if h.BranchLine > 0 {
				extra = fmt.Sprintf(" (predict from the branch on line %d)", h.BranchLine)
			}
			fmt.Printf("line %d: outcome %s decided by %s source at line %d, %s%s\n",
				*hints, h.Outcome, h.SourceKind, h.SourceLine, where, extra)
		}
	}
	if *inliner {
		fmt.Printf("%-16s %14s %8s\n", "procedure", "cross-boundary", "weight")
		for _, pr := range prog.InliningPriorities(opts, nil) {
			fmt.Printf("%-16s %14d %8d\n", pr.Procedure, pr.Conditionals, pr.Weight)
		}
	}

	if *jsonOut && !*doOpt {
		fatal(fmt.Errorf("-json requires -optimize"))
	}

	strictViolated := false
	work := prog
	if *doOpt {
		var rep *icbe.Report
		var optErr error
		work, rep, optErr = prog.Optimize(opts)
		if optErr != nil && rep == nil {
			fatal(optErr)
		}
		if *strict && (rep.Truncated || len(rep.Stats.Failures) > 0) {
			strictViolated = true
		}
		if *jsonOut {
			// The same encoder the service uses for /optimize and /stats,
			// so CLI and server reports cannot drift.
			if err := reportjson.Encode(os.Stdout, reportjson.FromReport(rep)); err != nil {
				fatal(err)
			}
		} else {
			fmt.Printf("optimized %d conditionals (%d node-query pairs, operations %d -> %d)\n",
				rep.Optimized, rep.PairsTotal, rep.OperationsBefore, rep.OperationsAfter)
		}
		if rep.Truncated {
			fmt.Fprintf(os.Stderr, "icbe: warning: work budget or deadline exhausted; some conditionals were not analyzed (see report)\n")
		}
		if fs := rep.FailureSummary(); fs != "" {
			fmt.Fprintf(os.Stderr, "icbe: warning: contained failures rolled back: %s\n", fs)
		}
		if *doReport && !*jsonOut {
			fmt.Printf("%6s %10s %8s %6s %8s %8s %13s\n",
				"line", "analyzable", "answers", "full", "dup est", "pairs", "applied")
			for _, c := range rep.Conditionals {
				status := fmt.Sprintf("%v", c.Applied)
				if c.Err != nil {
					status = "error"
				}
				if c.FailureKind != "" {
					status = c.FailureKind
				}
				if c.Skipped {
					status = "skipped"
					if c.FailureKind == "timeout" {
						status = "timeout"
					}
				}
				fmt.Printf("%6d %10v %8s %6v %8d %8d %13s\n",
					c.Line, c.Analyzable, c.Answers, c.Full, c.DupEstimate, c.PairsProcessed, status)
			}
			s := rep.Stats
			fmt.Printf("driver: %d workers, %d rounds, %d analyses (%d re-analyses), %d clones (%d avoided), analysis %v, apply %v\n",
				s.Workers, s.Rounds, s.Analyses, s.Reanalyses, s.Clones, s.ClonesAvoided, s.AnalysisWall, s.ApplyWall)
			if s.SNEMemoEntries > 0 || s.SNEMemoHits > 0 {
				fmt.Printf("memo: %d summary-node records, %d replayed, analysis caches ~%.1f KB\n",
					s.SNEMemoEntries, s.SNEMemoHits, float64(s.CacheBytes)/1024)
			}
			if s.QueriesReused > 0 || s.SubtreesInvalidated > 0 {
				rate := 0.0
				if s.PairsTotal > 0 {
					rate = float64(s.QueriesReused) / float64(s.PairsTotal)
				}
				fmt.Printf("incremental: %d/%d pairs reused (%.0f%%), %d subtrees invalidated\n",
					s.QueriesReused, s.PairsTotal, rate*100, s.SubtreesInvalidated)
			}
			if s.VerifyRuns > 0 {
				fmt.Printf("verify: %d shadow runs, %v\n", s.VerifyRuns, s.VerifyWall)
			}
			if s.CheckRuns > 0 {
				fmt.Printf("check: %d oracle runs, %d/%d claims graded (recall %.2f), %d disagreements, %d vacuous, %d residual, findings %d -> %d, %v\n",
					s.CheckRuns, s.SCCPAgreements+s.SCCPDisagreements, s.SCCPDecided, s.SCCPRecall,
					s.SCCPDisagreements, s.SCCPVacuous, s.SCCPResidual,
					s.CheckFindingsPre, s.CheckFindingsPost, s.CheckWall)
			}
			if *doFold {
				fmt.Printf("fold: %d/%d folds adopted (%d edges redirected), residual %d -> %d (reduction %.2f), %v\n",
					s.FoldApplied, s.FoldAttempted, s.FoldDuplicated,
					s.SCCPResidualBefore, s.SCCPResidualAfter, s.FoldReduction, s.FoldWall)
			}
		}
		if optErr != nil {
			// -check-fatal: the refusals were printed above; exit nonzero.
			fatal(optErr)
		}
	}

	if *doDump {
		fmt.Print(work.Dump())
	}
	if *doDot {
		fmt.Print(work.Dot())
	}
	if *doRun {
		res, err := work.Run(input)
		if err != nil {
			fatal(err)
		}
		for _, v := range res.Output {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "executed %d operations, %d conditionals\n", res.Operations, res.Conditionals)
	}
	if strictViolated {
		// -strict: contained failures and truncation are warnings by
		// default (the emitted program is still correct); strict callers
		// get a distinct exit code, separate from hard errors (1).
		fmt.Fprintln(os.Stderr, "icbe: strict: conditionals failed a gate or work was truncated")
		os.Exit(3)
	}
}

func parseInput(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input element %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icbe:", err)
	os.Exit(1)
}
