// Command icbe-worker is the standalone analysis worker for the server's
// fault-isolated pool (internal/pool). It is normally not run by hand:
// icbe-serve re-execs itself as its own workers, and this binary exists for
// deployments that want a separate, smaller worker image (point icbe-serve's
// -worker-bin at it).
//
// The worker speaks the pool's length-prefixed frame protocol on
// stdin/stdout — jobs in, heartbeats and portable summary records out — and
// exits when the supervisor closes the pipe. It holds no state worth saving:
// killing one at any moment costs the supervisor a re-dispatch, nothing
// more.
package main

import (
	"fmt"
	"os"

	"icbe/internal/pool"
)

func main() {
	pool.MaybeWorkerMain()
	// Without the pool environment marker this was launched by hand; run the
	// protocol on stdio anyway so `icbe-worker < frames` works for debugging.
	if err := pool.WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "icbe-worker:", err)
		os.Exit(1)
	}
}
