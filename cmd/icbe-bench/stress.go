package main

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/randprog"
	"icbe/internal/restructure"
)

// stressRecord is the adversarial-scale measurement in the BENCH_<n>.json
// output: one ~100k-node, 190-procedure randprog.Scale program driven through
// the optimizer with the incremental engine on and off. Two comparisons are
// published. "Optimize" is the full cold optimization run, where the engine's
// wins are cross-round (replaying subtrees whose regions survived earlier
// rounds' restructurings). "Reanalyze" re-runs the driver over the settled
// output program with the warm memo — the regime the incremental engine
// exists for (repeat queries over unchanged procedures) — against a
// from-scratch re-analysis of the same program. Both comparisons assert the
// two modes produce byte-identical optimized programs and identical
// deterministic counters before any timing is reported.
type stressRecord struct {
	Name         string `json:"name"`
	Nodes        int    `json:"nodes"`
	Procs        int    `json:"procs"`
	Conditionals int    `json:"conditionals"`

	OptimizeScratchMs     float64 `json:"optimize_scratch_ms"`
	OptimizeIncrementalMs float64 `json:"optimize_incremental_ms"`
	OptimizeSpeedup       float64 `json:"optimize_speedup"`
	QueriesReused         int     `json:"queries_reused"`
	PairsTotal            int     `json:"pairs_total"`
	ReuseRate             float64 `json:"reuse_rate"`
	SubtreesInvalidated   int64   `json:"subtrees_invalidated"`

	ReanalyzeScratchMs     float64 `json:"reanalyze_scratch_ms"`
	ReanalyzeIncrementalMs float64 `json:"reanalyze_incremental_ms"`
	ReanalyzeSpeedup       float64 `json:"reanalyze_speedup"`
	ReanalyzeReuseRate     float64 `json:"reanalyze_reuse_rate"`
}

// stressOptions is the driver configuration for the scale runs: serial (so
// the timings compare engines, not schedulers), unlimited work (the program
// is built so every conditional settles), no duplication cap.
func stressOptions() restructure.DriverOptions {
	return restructure.DriverOptions{
		Analysis: analysis.Options{
			Interprocedural: true,
			ModSummaries:    true,
			MemoSummaries:   true,
		},
		Workers: 1,
	}
}

// timedRun clones the program (so repeated runs see identical input),
// collects garbage (so one mode's allocation debt is not billed to the
// next), and times one full driver run.
func timedRun(p *ir.Program, o restructure.DriverOptions) (*restructure.DriverResult, time.Duration) {
	in := ir.Clone(p)
	runtime.GC()
	start := time.Now()
	dr := restructure.Optimize(in, o)
	return dr, time.Since(start)
}

// sameOutcome checks the scratch and incremental runs settled identically:
// same restructurings, same analysis cost, and a byte-identical optimized
// program. The stress numbers are only meaningful if the engine changed the
// cost and nothing else.
func sameOutcome(what string, a, b *restructure.DriverResult) error {
	if a.Optimized != b.Optimized || a.PairsTotal != b.PairsTotal ||
		a.Truncated != b.Truncated || a.Stats.Rounds != b.Stats.Rounds {
		return fmt.Errorf("stress: %s diverged: scratch opt=%d pairs=%d rounds=%d, incremental opt=%d pairs=%d rounds=%d",
			what, a.Optimized, a.PairsTotal, a.Stats.Rounds, b.Optimized, b.PairsTotal, b.Stats.Rounds)
	}
	if !bytes.Equal(ir.EncodeProgram(a.Program), ir.EncodeProgram(b.Program)) {
		return fmt.Errorf("stress: %s optimized programs differ between scratch and incremental modes", what)
	}
	return nil
}

// measureStress runs the adversarial-scale comparison on randprog.Scale's
// default configuration.
func measureStress(seed uint64) (*stressRecord, error) {
	src := randprog.Scale(seed, randprog.ScaleConfig{})
	p, err := ir.Build(src)
	if err != nil {
		return nil, fmt.Errorf("stress: scale program does not compile: %w", err)
	}
	rec := &stressRecord{
		Name:  fmt.Sprintf("randprog.Scale(seed=%d)", seed),
		Nodes: len(p.Nodes),
		Procs: len(p.Procs),
	}
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && !n.Synthetic {
			rec.Conditionals++
		}
	})

	scratch := stressOptions()
	scratch.Scratch = true
	warm := stressOptions()
	warm.Memo = analysis.NewSummaryMemo()

	sres, st := timedRun(p, scratch)
	ires, it := timedRun(p, warm)
	if err := sameOutcome("optimize", sres, ires); err != nil {
		return nil, err
	}
	rec.OptimizeScratchMs = ms(st)
	rec.OptimizeIncrementalMs = ms(it)
	rec.OptimizeSpeedup = ratio(st, it)
	rec.QueriesReused = ires.Stats.QueriesReused
	rec.PairsTotal = ires.PairsTotal
	if ires.PairsTotal > 0 {
		rec.ReuseRate = float64(ires.Stats.QueriesReused) / float64(ires.PairsTotal)
	}
	rec.SubtreesInvalidated = ires.Stats.SubtreesInvalidated

	// Re-analysis over the settled program. The warm memo's surviving
	// records were committed against regions never dirtied after recording,
	// so they are valid for exactly this program — replaying them against
	// the pre-optimization input would not be sound.
	final := ires.Program
	rsres, rst := timedRun(final, scratch)
	rires, rit := timedRun(final, warm)
	if err := sameOutcome("reanalyze", rsres, rires); err != nil {
		return nil, err
	}
	rec.ReanalyzeScratchMs = ms(rst)
	rec.ReanalyzeIncrementalMs = ms(rit)
	rec.ReanalyzeSpeedup = ratio(rst, rit)
	if rires.PairsTotal > 0 {
		rec.ReanalyzeReuseRate = float64(rires.Stats.QueriesReused) / float64(rires.PairsTotal)
	}
	return rec, nil
}

// measureRecursionStress runs the same incremental-vs-scratch comparison on
// the deep-recursion generator: a cyclic call graph (self-recursive chains
// and mutual-recursion rings) whose summaries settle by fixed point through
// the cycle — the entry/exit-splitting stress the hub-and-leaf scale shape
// cannot produce.
func measureRecursionStress(seed uint64) (*stressRecord, error) {
	src := randprog.Recursion(seed, randprog.RecConfig{
		Chains: 8, ChainLen: 5, Depth: 40, BodyStmts: 120, Globals: 3,
	})
	p, err := ir.Build(src)
	if err != nil {
		return nil, fmt.Errorf("stress: recursion program does not compile: %w", err)
	}
	rec := &stressRecord{
		Name:  fmt.Sprintf("randprog.Recursion(seed=%d)", seed),
		Nodes: len(p.Nodes),
		Procs: len(p.Procs),
	}
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && !n.Synthetic {
			rec.Conditionals++
		}
	})

	scratch := stressOptions()
	scratch.Scratch = true
	warm := stressOptions()
	warm.Memo = analysis.NewSummaryMemo()

	sres, st := timedRun(p, scratch)
	ires, it := timedRun(p, warm)
	if err := sameOutcome("recursion optimize", sres, ires); err != nil {
		return nil, err
	}
	rec.OptimizeScratchMs = ms(st)
	rec.OptimizeIncrementalMs = ms(it)
	rec.OptimizeSpeedup = ratio(st, it)
	rec.QueriesReused = ires.Stats.QueriesReused
	rec.PairsTotal = ires.PairsTotal
	if ires.PairsTotal > 0 {
		rec.ReuseRate = float64(ires.Stats.QueriesReused) / float64(ires.PairsTotal)
	}
	rec.SubtreesInvalidated = ires.Stats.SubtreesInvalidated

	final := ires.Program
	rsres, rst := timedRun(final, scratch)
	rires, rit := timedRun(final, warm)
	if err := sameOutcome("recursion reanalyze", rsres, rires); err != nil {
		return nil, err
	}
	rec.ReanalyzeScratchMs = ms(rst)
	rec.ReanalyzeIncrementalMs = ms(rit)
	rec.ReanalyzeSpeedup = ratio(rst, rit)
	if rires.PairsTotal > 0 {
		rec.ReanalyzeReuseRate = float64(rires.Stats.QueriesReused) / float64(rires.PairsTotal)
	}
	return rec, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func formatStress(r *stressRecord) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "stress: %s — %d nodes, %d procedures, %d conditionals\n",
		r.Name, r.Nodes, r.Procs, r.Conditionals)
	fmt.Fprintf(&b, "  optimize:  scratch %.0f ms, incremental %.0f ms (%.1fx), %d/%d pairs reused (%.0f%%), %d subtrees invalidated\n",
		r.OptimizeScratchMs, r.OptimizeIncrementalMs, r.OptimizeSpeedup,
		r.QueriesReused, r.PairsTotal, r.ReuseRate*100, r.SubtreesInvalidated)
	fmt.Fprintf(&b, "  reanalyze: scratch %.0f ms, incremental %.0f ms (%.1fx), %.0f%% pairs reused",
		r.ReanalyzeScratchMs, r.ReanalyzeIncrementalMs, r.ReanalyzeSpeedup, r.ReanalyzeReuseRate*100)
	return b.String()
}
