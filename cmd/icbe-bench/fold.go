package main

import (
	"fmt"

	"icbe"
	"icbe/internal/progs"
)

// foldRecord is one workload's residual-fold summary in the BENCH_<n>.json
// output: how many conditionals the CCP oracle still proves constant after
// the correlation rounds (before), how many survive the fold pass (after),
// and what the pass did to get there. GrowthOps is the optimized program's
// operation-count delta versus the same run without the fold pass — the
// duplication cost, which the degenerate edge-redirection strategy keeps at
// zero or below.
type foldRecord struct {
	Name           string  `json:"name"`
	ResidualBefore int     `json:"sccp_residual_before"`
	ResidualAfter  int     `json:"sccp_residual_after"`
	FoldAttempted  int     `json:"fold_attempted"`
	FoldApplied    int     `json:"fold_applied"`
	FoldDuplicated int     `json:"fold_duplicated"`
	FoldReduction  float64 `json:"fold_reduction"`
	FoldFailures   int     `json:"fold_failures"`
	GrowthOps      int     `json:"growth_ops"`
}

// measureFold runs every workload through the optimizer twice — fold pass
// off and on, otherwise the paper's default configuration — and reports the
// residual constant-branch counts and the fold pass's work.
func measureFold(ws []*progs.Workload, termLim int) ([]foldRecord, error) {
	var out []foldRecord
	for _, w := range ws {
		base := icbe.DefaultOptions()
		base.TerminationLimit = termLim
		p, err := icbe.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("fold: %s does not compile: %w", w.Name, err)
		}
		_, ctrl, err := p.Optimize(base)
		if err != nil {
			return nil, fmt.Errorf("fold: %s control run: %w", w.Name, err)
		}
		folded := base
		folded.Fold = true
		folded.VerifyInputs = [][]int64{w.Train, w.Ref}
		_, rep, err := p.Optimize(folded)
		if err != nil {
			return nil, fmt.Errorf("fold: %s fold run: %w", w.Name, err)
		}
		out = append(out, foldRecord{
			Name:           w.Name,
			ResidualBefore: rep.Stats.SCCPResidualBefore,
			ResidualAfter:  rep.Stats.SCCPResidualAfter,
			FoldAttempted:  rep.Stats.FoldAttempted,
			FoldApplied:    rep.Stats.FoldApplied,
			FoldDuplicated: rep.Stats.FoldDuplicated,
			FoldReduction:  rep.Stats.FoldReduction,
			FoldFailures:   rep.Stats.Failures["fold"],
			GrowthOps:      rep.OperationsAfter - ctrl.OperationsAfter,
		})
	}
	return out, nil
}

// requireFoldBite gates the emitter on the fold pass doing real work: at
// least one workload's residual constant-branch count must drop. A pass
// that attempts nothing — or attempts and has everything vetoed — is a
// regression dressed as a feature.
func requireFoldBite(recs []foldRecord) error {
	for _, r := range recs {
		if r.ResidualBefore > r.ResidualAfter {
			return nil
		}
	}
	return fmt.Errorf("fold pass is vacuous: no workload's residual constant-branch count dropped across %d workloads", len(recs))
}
