package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"icbe/internal/progs"
	"icbe/internal/server"
	"icbe/internal/store"
)

// cacheRecord is one workload's warm-vs-cold measurement through the full
// service stack: a cold request is a cache miss that runs the whole
// optimization pipeline; a warm request is the same payload again, served
// from the content-addressed store. Both include HTTP and JSON overhead, so
// the speedup is what an operator of icbe-serve would actually observe.
type cacheRecord struct {
	Name        string  `json:"name"`
	ColdIters   int     `json:"cold_iters"`
	ColdNsPerOp int64   `json:"cold_ns_per_op"`
	WarmIters   int     `json:"warm_iters"`
	WarmNsPerOp int64   `json:"warm_ns_per_op"`
	WarmSource  string  `json:"warm_source"`
	Speedup     float64 `json:"speedup"`
}

// measureCache stands up an in-process optimization service with both cache
// layers enabled and measures, per workload, the cost of a cold compute
// versus a warm store hit. Cold iterations defeat the cache by varying the
// termination limit (distinct request fingerprints, near-identical work);
// warm iterations repeat one fixed request. Returns the per-workload records
// and the service's final store counter snapshot.
func measureCache(ws []*progs.Workload) ([]cacheRecord, *store.Snapshot, error) {
	dir, err := os.MkdirTemp("", "icbe-bench-store-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	svc := server.New(server.Config{
		CacheEntries:    1024,
		StoreDir:        dir,
		Workers:         runtime.NumCPU(),
		DefaultDeadline: time.Minute,
		MaxDeadline:     time.Minute,
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(req server.OptimizeRequest) (time.Duration, string, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, "", err
		}
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		elapsed := time.Since(t0)
		if resp.StatusCode != http.StatusOK {
			return 0, "", fmt.Errorf("/optimize status %d", resp.StatusCode)
		}
		return elapsed, resp.Header.Get("X-Icbe-Cache"), nil
	}

	var recs []cacheRecord
	for _, w := range ws {
		req := func(term int) server.OptimizeRequest {
			return server.OptimizeRequest{
				Program: w.Source,
				Input:   w.Train,
				Options: &server.RequestOptions{Term: term},
			}
		}
		const baseTerm = 1000
		rec := cacheRecord{Name: w.Name}
		var coldTotal time.Duration
		for term := baseTerm; term < baseTerm+5; term++ {
			elapsed, src, err := post(req(term))
			if err != nil {
				return nil, nil, fmt.Errorf("%s cold: %w", w.Name, err)
			}
			if src != "miss" {
				return nil, nil, fmt.Errorf("%s cold request served %q, want miss", w.Name, src)
			}
			coldTotal += elapsed
			rec.ColdIters++
		}
		rec.ColdNsPerOp = coldTotal.Nanoseconds() / int64(rec.ColdIters)

		var warmTotal time.Duration
		for i := 0; i < 50; i++ {
			elapsed, src, err := post(req(baseTerm))
			if err != nil {
				return nil, nil, fmt.Errorf("%s warm: %w", w.Name, err)
			}
			if !strings.HasPrefix(src, "hit-") {
				return nil, nil, fmt.Errorf("%s warm request served %q, want a hit", w.Name, src)
			}
			rec.WarmSource = src
			warmTotal += elapsed
			rec.WarmIters++
		}
		rec.WarmNsPerOp = warmTotal.Nanoseconds() / int64(rec.WarmIters)
		if rec.WarmNsPerOp > 0 {
			rec.Speedup = float64(rec.ColdNsPerOp) / float64(rec.WarmNsPerOp)
		}
		recs = append(recs, rec)
	}
	snap := svc.Stats().Store
	return recs, snap, nil
}
