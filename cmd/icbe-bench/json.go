package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/experiments"
	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/restructure"
	"icbe/internal/store"
)

// benchRecord is one benchmark's measurement in the BENCH_<n>.json output:
// the same quantities `go test -bench` reports (ns/op, allocs/op, B/op) plus
// the analysis throughput in node-query pairs per second, so the perf
// trajectory across PRs diffs as data instead of prose.
type benchRecord struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	PairsPerOp  int     `json:"pairs_per_op"`
	PairsPerSec float64 `json:"pairs_per_sec"`
}

// checkRecord is one workload's static verification summary in the JSON
// output: SCCP cross-check agreement, the recall ratio (graded fraction of
// the claims the backward analysis decided), the residual metric (constant
// branches ICBE left in the optimized program), and the invariant lint
// finding counts. Disagreements, refusals, and findings are correctness
// indicators and must be zero; zero total agreements across workloads means
// the oracle has gone vacuous (the bench smoke job fails on it).
type checkRecord struct {
	Name          string  `json:"name"`
	Analyzable    int     `json:"analyzable"`
	Optimized     int     `json:"optimized"`
	Agreements    int     `json:"sccp_agreements"`
	Disagreements int     `json:"sccp_disagreements"`
	Decided       int     `json:"sccp_decided"`
	Recall        float64 `json:"sccp_recall"`
	Residual      int     `json:"sccp_residual"`
	FindingsPre   int     `json:"check_findings_pre"`
	FindingsPost  int     `json:"check_findings_post"`
	CheckFailures int     `json:"check_failures"`
}

// benchFile is the top-level BENCH_<n>.json document.
type benchFile struct {
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	Benchmarks []benchRecord   `json:"benchmarks"`
	Cache      []cacheRecord   `json:"cache,omitempty"`
	Store      *store.Snapshot `json:"store,omitempty"`
	Check      []checkRecord   `json:"check"`
	Fold       []foldRecord    `json:"fold"`
	Stress     *stressRecord   `json:"stress,omitempty"`
	// StressRecursion is the same incremental-vs-scratch comparison on the
	// deep-recursion generator, whose cyclic call graph stresses entry/exit
	// splitting instead of the hub-and-leaf fan-out.
	StressRecursion *stressRecord `json:"stress_recursion,omitempty"`
}

// measure times fn like a testing.B loop: one untimed warm-up (so pools and
// memos reach their steady state, as in a long-lived process), then repeated
// runs until a fixed wall budget. Allocation counts come from the runtime's
// Mallocs/TotalAlloc deltas across the timed window.
func measure(name string, fn func() (pairs int, err error)) (benchRecord, error) {
	pairs, err := fn()
	if err != nil {
		return benchRecord{}, fmt.Errorf("%s: %w", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const budget = 300 * time.Millisecond
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for elapsed < budget && iters < 200 {
		if _, err := fn(); err != nil {
			return benchRecord{}, fmt.Errorf("%s: %w", name, err)
		}
		iters++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)
	rec := benchRecord{
		Name:        name,
		Iters:       iters,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(iters),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(iters),
		PairsPerOp:  pairs,
	}
	if elapsed > 0 {
		rec.PairsPerSec = float64(pairs) * float64(iters) / elapsed.Seconds()
	}
	return rec, nil
}

// writeBenchJSON measures the two acceptance-yardstick benchmarks —
// the Table 2 analysis sweep and the full optimization driver at one and
// NumCPU workers, matching BenchmarkTable2 and BenchmarkDriverWorkers in
// bench_test.go except that the driver runs with the summary-node memo the
// production driver enables by default — and writes the results to path.
func writeBenchJSON(path string, ws []*progs.Workload, termLim int, requireBite, requireFold bool, minSpeedup float64) error {
	out := benchFile{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	rec, err := measure("Table2", func() (int, error) {
		rows, err := experiments.Table2(ws, termLim)
		if err != nil {
			return 0, err
		}
		pairs := 0
		for _, r := range rows {
			pairs += r.PairsTotal
		}
		return pairs, nil
	})
	if err != nil {
		return err
	}
	out.Benchmarks = append(out.Benchmarks, rec)

	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		rec, err := measure(fmt.Sprintf("DriverWorkers/workers=%d", workers), func() (int, error) {
			pairs := 0
			for _, w := range ws {
				p, err := ir.Build(w.Source)
				if err != nil {
					return 0, err
				}
				dr := restructure.Optimize(p, restructure.DriverOptions{
					Analysis: analysis.Options{Interprocedural: true,
						ModSummaries: true, MemoSummaries: true, TerminationLimit: 1000},
					MaxDuplication: 100,
					Workers:        workers,
				})
				pairs += dr.PairsTotal
			}
			return pairs, nil
		})
		if err != nil {
			return err
		}
		out.Benchmarks = append(out.Benchmarks, rec)
	}

	// Warm-vs-cold cache measurements through the full service stack, plus
	// the store's counter block, so cache efficacy diffs across PRs too.
	cacheRecs, storeSnap, err := measureCache(ws)
	if err != nil {
		return err
	}
	out.Cache = cacheRecs
	out.Store = storeSnap

	// The static verification summary rides along so correctness indicators
	// (zero disagreements, zero findings) diff across PRs like the perf
	// numbers do.
	rows, err := experiments.CheckReport(ws, termLim)
	if err != nil {
		return err
	}
	for _, r := range rows {
		out.Check = append(out.Check, checkRecord{
			Name:          r.Name,
			Analyzable:    r.Analyzable,
			Optimized:     r.Optimized,
			Agreements:    r.Agreements,
			Disagreements: r.Disagreements,
			Decided:       r.Decided,
			Recall:        r.Recall,
			Residual:      r.Residual,
			FindingsPre:   r.FindingsPre,
			FindingsPost:  r.FindingsPost,
			CheckFailures: r.CheckFailures,
		})
	}

	if requireBite {
		total := 0
		for _, r := range out.Check {
			total += r.Agreements
		}
		if total == 0 {
			return fmt.Errorf("check oracle is vacuous: zero SCCP agreements across %d workloads", len(out.Check))
		}
	}

	// The residual-fold summary rides along so the fold pass's bite (and its
	// zero-growth contract) diffs across PRs.
	foldRecs, err := measureFold(ws, termLim)
	if err != nil {
		return err
	}
	out.Fold = foldRecs
	if requireFold {
		if err := requireFoldBite(foldRecs); err != nil {
			return err
		}
	}

	// The adversarial-scale incremental-vs-scratch comparison rides along in
	// every BENCH_<n>.json so the incremental engine's efficacy diffs across
	// PRs like every other number.
	stress, err := measureStress(1)
	if err != nil {
		return err
	}
	out.Stress = stress
	if minSpeedup > 0 && stress.ReanalyzeSpeedup < minSpeedup {
		return fmt.Errorf("incremental re-analysis speedup %.2fx is below the required %.1fx (scratch %.0f ms vs incremental %.0f ms on %d nodes)",
			stress.ReanalyzeSpeedup, minSpeedup, stress.ReanalyzeScratchMs, stress.ReanalyzeIncrementalMs, stress.Nodes)
	}
	recStress, err := measureRecursionStress(1)
	if err != nil {
		return err
	}
	out.StressRecursion = recStress

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
