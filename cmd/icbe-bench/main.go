// Command icbe-bench regenerates the paper's evaluation tables and figures
// on the reproduction's workloads.
//
// Usage:
//
//	icbe-bench -all
//	icbe-bench -table1 -table2
//	icbe-bench -fig11 -workload stdio
//	icbe-bench -json BENCH_3.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"icbe/internal/experiments"
	"icbe/internal/progs"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		table1    = flag.Bool("table1", false, "Table 1: benchmark characteristics")
		table2    = flag.Bool("table2", false, "Table 2: analysis cost")
		fig9      = flag.Bool("fig9", false, "Figure 9: statically detectable correlation")
		fig10     = flag.Bool("fig10", false, "Figure 10: cost/benefit scatter")
		fig11     = flag.Bool("fig11", false, "Figure 11: reduction vs code growth")
		headline  = flag.Bool("headline", false, "headline claims (3-18% eliminated, ~2.5x vs intra)")
		inlining  = flag.Bool("inlining", false, "inlining vs ICBE comparison (paper §5)")
		heuristic = flag.Bool("heuristic", false, "growth-limit vs profile-guided benefit heuristic")
		checkRep  = flag.Bool("check", false, "static verification: SCCP cross-check agreement and recall per workload")
		workload  = flag.String("workload", "", "restrict to one workload by name")
		termLim   = flag.Int("term", experiments.PaperTerminationLimit, "analysis termination limit")
		workers   = flag.Int("workers", runtime.NumCPU(), "analysis worker goroutines per driver run (1 = serial)")
		verify    = flag.Bool("verify", false, "shadow-execute every applied restructuring differentially; violations roll back")
		timeout   = flag.Duration("timeout", 0, "per-driver-run deadline, e.g. 30s (0 = none)")
		jsonOut   = flag.String("json", "", "write machine-readable benchmark measurements (ns/op, allocs/op, pairs/sec) to this file, e.g. BENCH_3.json")
		bite      = flag.Bool("require-check-bite", false, "with -json: exit nonzero if the check rows report zero total SCCP agreements (a vacuous oracle)")
		foldBite  = flag.Bool("require-fold-bite", false, "with -json: exit nonzero if no workload's residual constant-branch count drops under the fold pass")
		stress    = flag.Bool("stress", false, "adversarial scale: optimize and re-analyze a ~100k-node generated program (plus a deep-recursion program) with the incremental engine on and off")
		minSpeed  = flag.Float64("require-incremental-speedup", 0, "with -json or -stress: exit nonzero if incremental re-analysis of the 100k-node stress program is not this many times faster than from-scratch (0 = no gate)")
	)
	flag.Parse()
	experiments.Workers = *workers
	experiments.Verify = *verify
	experiments.Timeout = *timeout
	if !*all && !*table1 && !*table2 && !*fig9 && !*fig10 && !*fig11 && !*headline && !*inlining && !*heuristic && !*checkRep && !*stress && *jsonOut == "" {
		flag.PrintDefaults()
		os.Exit(2)
	}

	ws := progs.All()
	if *workload != "" {
		w := progs.ByName(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "icbe-bench: unknown workload %q\n", *workload)
			os.Exit(1)
		}
		ws = []*progs.Workload{w}
	}

	if *jsonOut != "" {
		check(writeBenchJSON(*jsonOut, ws, *termLim, *bite, *foldBite, *minSpeed))
	}
	if *stress {
		rec, err := measureStress(1)
		check(err)
		fmt.Println(formatStress(rec))
		if *minSpeed > 0 && rec.ReanalyzeSpeedup < *minSpeed {
			fmt.Fprintf(os.Stderr, "icbe-bench: incremental re-analysis speedup %.2fx is below the required %.1fx\n",
				rec.ReanalyzeSpeedup, *minSpeed)
			os.Exit(1)
		}
		recRec, err := measureRecursionStress(1)
		check(err)
		fmt.Println(formatStress(recRec))
	}

	if *all || *table1 {
		rows, err := experiments.Table1(ws)
		check(err)
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *all || *table2 {
		rows, err := experiments.Table2(ws, *termLim)
		check(err)
		fmt.Println(experiments.FormatTable2(rows))
	}
	if *all || *fig9 {
		rows, err := experiments.Figure9(ws)
		check(err)
		fmt.Println(experiments.FormatFigure9(rows))
	}
	if *all || *fig10 {
		intra, inter, err := experiments.Figure10(ws)
		check(err)
		fmt.Println(experiments.FormatFigure10(intra, inter))
	}
	if *all || *fig11 {
		rows, err := experiments.Figure11(ws, *termLim, experiments.PaperDupLimits)
		check(err)
		fmt.Println(experiments.FormatFigure11(rows))
	}
	if *all || *headline {
		h, err := experiments.ComputeHeadline(ws, *termLim, experiments.PaperDupLimits)
		check(err)
		fmt.Println(experiments.FormatHeadline(h))
	}
	if *all || *inlining {
		rows, err := experiments.InliningComparison(ws, *termLim, 200)
		check(err)
		fmt.Println(experiments.FormatInlining(rows))
	}
	if *all || *heuristic {
		rows, err := experiments.HeuristicComparison(ws, *termLim)
		check(err)
		fmt.Println(experiments.FormatHeuristic(rows))
	}
	if *all || *checkRep {
		rows, err := experiments.CheckReport(ws, *termLim)
		check(err)
		fmt.Println(experiments.FormatCheckReport(rows))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "icbe-bench:", err)
		os.Exit(1)
	}
}
