package icbe

import (
	"errors"
	"testing"
	"time"

	"icbe/internal/interp"
	"icbe/internal/randprog"
)

// fuzzConfig keeps generated programs small enough for tight fuzz
// iterations while still exercising interprocedural correlation.
var fuzzConfig = randprog.Config{Procs: 3, MaxStmts: 4, MaxDepth: 2}

// fuzzStepBudget bounds each differential run. Generated programs always
// terminate (randprog bounds its loops), so hitting the budget means the
// input is merely slow and is skipped, not failed.
const fuzzStepBudget = 2_000_000

// FuzzOptimize feeds randomly generated (always-valid, always-terminating)
// MiniC programs through the full optimize pipeline with the shadow oracle
// enabled and cross-checks the paper's §3.2 guarantee independently:
// identical output and no executed-operation growth on every input vector.
func FuzzOptimize(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 3, 7, 11, 42, 99, 1234, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		src := randprog.Generate(seed, fuzzConfig)
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program rejected: %v\n%s", err, src)
		}
		opts := DefaultOptions()
		opts.Verify = true
		opts.Timeout = 30 * time.Second
		opt, rep, err := p.Optimize(opts)
		if err != nil {
			t.Fatalf("Optimize error: %v\n%s", err, src)
		}
		// A contained non-timeout failure means a gate caught the optimizer
		// producing a bad program — exactly what fuzzing is here to surface.
		for kind, n := range rep.Stats.Failures {
			if kind != "timeout" {
				t.Fatalf("%d contained %s failure(s) on seed %d:\n%s", n, kind, seed, src)
			}
		}

		// Independent differential check, not trusting the driver's own
		// oracle: same output, never more executed operations.
		inputs := [][]int64{nil, {1, 2, 3}, {-5, 0, 7, 9, 1 << 40}}
		for _, in := range inputs {
			pre, preErr := interp.Run(p.g, interp.Options{Input: in, MaxSteps: fuzzStepBudget})
			if errors.Is(preErr, interp.ErrStepLimit) {
				continue // too slow to compare, not wrong
			}
			post, postErr := interp.Run(opt.g, interp.Options{Input: in, MaxSteps: fuzzStepBudget})
			if (preErr != nil) != (postErr != nil) {
				t.Fatalf("fault behavior changed on input %v: pre=%v post=%v\n%s",
					in, preErr, postErr, src)
			}
			if preErr != nil {
				continue
			}
			if len(pre.Output) != len(post.Output) {
				t.Fatalf("output length changed on input %v: %v vs %v\n%s",
					in, pre.Output, post.Output, src)
			}
			for i := range pre.Output {
				if pre.Output[i] != post.Output[i] {
					t.Fatalf("output changed on input %v at %d: %v vs %v\n%s",
						in, i, pre.Output, post.Output, src)
				}
			}
			if post.Operations > pre.Operations {
				t.Fatalf("executed operations grew on input %v: %d -> %d\n%s",
					in, pre.Operations, post.Operations, src)
			}
		}
	})
}
