package icbe

import (
	"testing"

	"icbe/internal/progs"
	"icbe/internal/randprog"
)

// TestCheckLayerWorkloads runs the full pipeline with the static check layer
// on every workload and requires a clean bill of health: the SCCP oracle
// never contradicts a demand-driven answer, the invariant lints stay silent
// before and after restructuring, nothing is refused, and the optimized
// program is byte-identical to a run without the layer (observation must not
// perturb the optimization).
func TestCheckLayerWorkloads(t *testing.T) {
	for _, w := range progs.All() {
		t.Run(w.Name, func(t *testing.T) {
			p, err := Compile(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			plain, _, err := p.Optimize(DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Check = true
			opt, rep, err := p.Optimize(opts)
			if err != nil {
				t.Fatal(err)
			}
			s := rep.Stats
			if s.CheckRuns == 0 {
				t.Fatal("check layer never ran")
			}
			if s.SCCPDisagreements != 0 {
				t.Errorf("SCCP disagreements = %d, want 0", s.SCCPDisagreements)
			}
			if n := s.Failures["check"]; n != 0 {
				t.Errorf("check refusals = %d, want 0", n)
			}
			if s.CheckFindingsPre != 0 || s.CheckFindingsPost != 0 {
				t.Errorf("invariant findings = %d -> %d, want 0 -> 0",
					s.CheckFindingsPre, s.CheckFindingsPost)
			}
			if opt.Dump() != plain.Dump() {
				t.Error("check layer changed the optimization result")
			}
		})
	}
}

// TestCheckLayerRandprog runs the differential-equivalence seed programs
// through Optimize with CheckFatal, so any oracle disagreement or lint
// regression surfaces as a hard error instead of a contained rollback.
func TestCheckLayerRandprog(t *testing.T) {
	cfg := randprog.Config{Procs: 3, MaxStmts: 4, MaxDepth: 2}
	for _, seed := range []uint64{0, 1, 2, 3, 7, 11, 42, 99, 1234, 0xdeadbeef} {
		src := randprog.Generate(seed, cfg)
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d rejected: %v", seed, err)
		}
		opts := DefaultOptions()
		opts.CheckFatal = true
		_, rep, err := p.Optimize(opts)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if rep.Stats.CheckRuns == 0 {
			t.Fatalf("seed %d: CheckFatal did not imply Check", seed)
		}
		if rep.Stats.SCCPDisagreements != 0 {
			t.Fatalf("seed %d: %d SCCP disagreements\n%s",
				seed, rep.Stats.SCCPDisagreements, src)
		}
	}
}
