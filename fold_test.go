package icbe

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/randprog"
)

// foldFuzzSource picks the generator for one fuzz seed: every third seed is
// a deep-recursion program (cyclic call graph), the rest are the acyclic
// generator the other fuzzers use — so the fold pass is fuzzed over both
// call-graph shapes.
func foldFuzzSource(seed uint64) string {
	if seed%3 == 0 {
		return randprog.Recursion(seed, randprog.RecConfig{})
	}
	return randprog.Generate(seed, fuzzConfig)
}

// FuzzFold drives generated programs through the optimizer with the
// residual fold pass enabled and asserts the pass's whole contract:
// panic-freedom, a valid optimized program, a residual count that never
// rises, byte-determinism across repeated runs and worker counts, and —
// independently of the driver's own gates — unchanged output and no
// executed-operation growth on every input vector.
func FuzzFold(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 3, 7, 11, 42, 99, 1234, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		src := foldFuzzSource(seed)
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program rejected: %v\n%s", err, src)
		}
		opts := DefaultOptions()
		opts.Fold = true
		opts.Verify = true
		opts.Timeout = 30 * time.Second
		opt, rep, err := p.Optimize(opts)
		if err != nil {
			t.Fatalf("Optimize error: %v\n%s", err, src)
		}
		// "fold" failures are the transactional gates vetoing a fold — the
		// containment working as designed, not a bug. "timeout" is slowness.
		// Anything else means a gate caught a bad program.
		for kind, n := range rep.Stats.Failures {
			if kind != "timeout" && kind != "fold" {
				t.Fatalf("%d contained %s failure(s) on seed %d:\n%s", n, kind, seed, src)
			}
		}
		if err := ir.Validate(opt.g); err != nil {
			t.Fatalf("folded program fails validation on seed %d: %v\n%s", seed, err, src)
		}
		if rep.Stats.SCCPResidualAfter > rep.Stats.SCCPResidualBefore {
			t.Fatalf("fold pass raised the residual %d -> %d on seed %d:\n%s",
				rep.Stats.SCCPResidualBefore, rep.Stats.SCCPResidualAfter, seed, src)
		}

		// Byte-determinism: a repeat run and a parallel run must produce the
		// identical optimized program and fold counters.
		for _, workers := range []int{opts.Workers, 4} {
			o2 := opts
			o2.Workers = workers
			opt2, rep2, err := p.Optimize(o2)
			if err != nil {
				t.Fatalf("repeat Optimize (workers=%d) error: %v\n%s", workers, err, src)
			}
			if !bytes.Equal(ir.EncodeProgram(opt.g), ir.EncodeProgram(opt2.g)) {
				t.Fatalf("folded program is nondeterministic (workers=%d) on seed %d\n%s", workers, seed, src)
			}
			if rep.Stats.FoldApplied != rep2.Stats.FoldApplied ||
				rep.Stats.FoldDuplicated != rep2.Stats.FoldDuplicated ||
				rep.Stats.SCCPResidualAfter != rep2.Stats.SCCPResidualAfter {
				t.Fatalf("fold counters are nondeterministic (workers=%d) on seed %d: %d/%d/%d vs %d/%d/%d\n%s",
					workers, seed,
					rep.Stats.FoldApplied, rep.Stats.FoldDuplicated, rep.Stats.SCCPResidualAfter,
					rep2.Stats.FoldApplied, rep2.Stats.FoldDuplicated, rep2.Stats.SCCPResidualAfter, src)
			}
		}

		// Independent differential check, not trusting the driver's gates.
		inputs := [][]int64{nil, {1, 2, 3}, {-5, 0, 7, 9, 1 << 40}}
		for _, in := range inputs {
			pre, preErr := interp.Run(p.g, interp.Options{Input: in, MaxSteps: fuzzStepBudget})
			if errors.Is(preErr, interp.ErrStepLimit) {
				continue
			}
			post, postErr := interp.Run(opt.g, interp.Options{Input: in, MaxSteps: fuzzStepBudget})
			if (preErr != nil) != (postErr != nil) {
				t.Fatalf("fault behavior changed on input %v: pre=%v post=%v\n%s", in, preErr, postErr, src)
			}
			if preErr != nil {
				continue
			}
			if fmt.Sprint(pre.Output) != fmt.Sprint(post.Output) {
				t.Fatalf("output changed on input %v: %v vs %v\n%s", in, pre.Output, post.Output, src)
			}
			if post.Operations > pre.Operations {
				t.Fatalf("executed operations grew on input %v: %d -> %d\n%s", in, pre.Operations, post.Operations, src)
			}
		}
	})
}

// TestFoldEquivalence extends the golden equivalence suite to the fold
// pass: for every workload, generated program, and deep-recursion shape,
// the fold-enabled run (shadow-verified) must be byte-identical across
// worker counts and pinned by a golden, and its executed output must match
// the fold-disabled run on every input.
func TestFoldEquivalence(t *testing.T) {
	type workload struct {
		name   string
		src    string
		inputs [][]int64
	}
	var cases []workload
	for _, w := range progs.All() {
		cases = append(cases, workload{name: w.Name, src: w.Source, inputs: [][]int64{w.Train, w.Ref}})
	}
	fuzzInputs := [][]int64{nil, {1, 2, 3}, {-5, 0, 7, 9, 1 << 40}}
	for _, seed := range equivalenceSeeds {
		cases = append(cases, workload{
			name:   fmt.Sprintf("randprog-%d", seed),
			src:    randprog.Generate(seed, fuzzConfig),
			inputs: fuzzInputs,
		})
	}
	for _, seed := range recursionSeeds {
		cases = append(cases, workload{
			name:   fmt.Sprintf("recursion-%d", seed),
			src:    randprog.Recursion(seed, randprog.RecConfig{}),
			inputs: [][]int64{{0}, {5}, {-3}},
		})
	}
	for _, w := range cases {
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			offGolden, onGolden := "", ""
			for _, workers := range []int{1, 4, -1} {
				opts := DefaultOptions()
				opts.Timeout = 2 * time.Minute
				opts.Workers = workers
				opts.Verify = true
				off := renderEquivalence(t, w.src, w.inputs, opts)
				opts.Fold = true
				on := renderEquivalence(t, w.src, w.inputs, opts)
				if offGolden == "" {
					offGolden, onGolden = off, on
					checkGolden(t, "fold-"+w.name, on)
					continue
				}
				if off != offGolden {
					t.Errorf("workers=%d: fold-off run diverged from workers=1", workers)
				}
				if on != onGolden {
					t.Errorf("workers=%d: fold-on run diverged from workers=1:\n--- workers=1\n%s--- workers=%d\n%s",
						workers, onGolden, workers, on)
				}
			}
			if diff := runOutputDiff(offGolden, onGolden); diff != "" {
				t.Errorf("fold pass changed executed output: %s", diff)
			}
		})
	}
}

// recursionSeeds are the deep-recursion instances pinned by the golden
// suites.
var recursionSeeds = []uint64{3, 9}

// runOutputDiff compares the executed-output lines of two renderEquivalence
// results, ignoring operation and conditional counts (the fold pass changes
// those by design; it may never change output).
func runOutputDiff(a, b string) string {
	outputs := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "run input=") {
				if i := strings.Index(line, " ops="); i >= 0 {
					line = line[:i]
				}
				out = append(out, line)
			}
		}
		return out
	}
	av, bv := outputs(a), outputs(b)
	if len(av) != len(bv) {
		return fmt.Sprintf("run-line count %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			return fmt.Sprintf("%q vs %q", av[i], bv[i])
		}
	}
	return ""
}
