// Package icbe is a reproduction of "Interprocedural Conditional Branch
// Elimination" (Bodík, Gupta, Soffa — PLDI 1997). It provides:
//
//   - a compiler front end for MiniC, a small C-like language, lowering to
//     an interprocedural control flow graph (ICFG) in call-site normal form;
//   - the paper's demand-driven interprocedural static correlation analysis
//     (queries of the form `var relop const` propagated backwards with
//     summary node entries at procedure exits);
//   - the ICBE restructuring transformation: path duplication with
//     procedure entry splitting and exit splitting, eliminating conditional
//     branches whose outcome is statically known along correlated paths;
//   - an intraprocedural baseline (Mueller/Whalley-style, with MOD summary
//     information at call sites);
//   - an ICFG interpreter/profiler used both to collect dynamic profiles
//     and to verify that optimized programs behave identically while never
//     executing more operations.
//
// Quick start:
//
//	prog, err := icbe.Compile(src)
//	before, _ := prog.Run(input)
//	opt, report, err := prog.Optimize(icbe.DefaultOptions())
//	after, _ := opt.Run(input)
//	// identical output, fewer executed conditional branches
package icbe

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/restructure"
)

// Program is a compiled MiniC program in ICFG form.
type Program struct {
	g *ir.Program
}

// Compile parses, checks, and lowers MiniC source text. Library callers
// always get an error for bad input, never a crash: an internal panic in
// the front end is recovered at this boundary.
func Compile(src string) (p *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("icbe: internal error compiling program: %v\n%s", r, debug.Stack())
		}
	}()
	g, err := ir.Build(src)
	if err != nil {
		return nil, err
	}
	if err := ir.Validate(g); err != nil {
		return nil, fmt.Errorf("icbe: internal: built graph invalid: %w", err)
	}
	return &Program{g: g}, nil
}

// Graph exposes the underlying ICFG (read-mostly; mutate via Optimize).
func (p *Program) Graph() *ir.Program { return p.g }

// Dump renders the ICFG as text.
func (p *Program) Dump() string { return p.g.Dump() }

// Dot renders the ICFG in Graphviz format.
func (p *Program) Dot() string { return p.g.Dot() }

// Stats summarizes program size.
type Stats struct {
	SourceLines     int
	Procedures      int
	Nodes           int // all ICFG nodes, including synthetic ones
	Operations      int // operation nodes (assign/branch/store/print/call)
	Conditionals    int // branch nodes
	AnalyzableConds int // branches of the (var relop const) form
}

// Stats returns the program's size statistics.
func (p *Program) Stats() Stats {
	st := ir.Collect(p.g)
	return Stats{
		SourceLines:     p.g.SourceLines,
		Procedures:      st.Procs,
		Nodes:           st.AllNodes,
		Operations:      st.Operations,
		Conditionals:    st.Conditionals,
		AnalyzableConds: st.AnalyzableConds,
	}
}

// RunResult reports one execution of a program.
type RunResult struct {
	// Output is the sequence of printed values.
	Output []int64
	// Operations counts executed operation nodes; Conditionals counts
	// executed branch nodes.
	Operations   int64
	Conditionals int64
	// NodeCounts holds per-node execution counts when profiling was on.
	NodeCounts map[int]int64
}

// Run executes the program on the given input stream.
func (p *Program) Run(input []int64) (*RunResult, error) {
	return p.run(input, false)
}

// RunProfiled executes the program and records per-node execution counts.
func (p *Program) RunProfiled(input []int64) (*RunResult, error) {
	return p.run(input, true)
}

func (p *Program) run(input []int64, prof bool) (*RunResult, error) {
	res, err := interp.Run(p.g, interp.Options{Input: input, Profile: prof})
	if err != nil {
		return nil, err
	}
	out := &RunResult{
		Output:       res.Output,
		Operations:   res.Operations,
		Conditionals: res.CondExecs,
	}
	if prof {
		out.NodeCounts = make(map[int]int64, len(res.ExecCount))
		for id, c := range res.ExecCount {
			out.NodeCounts[int(id)] = c
		}
	}
	return out, nil
}

// Options configures analysis and optimization.
type Options struct {
	// Interprocedural selects the ICBE analysis; false selects the
	// intraprocedural baseline.
	Interprocedural bool
	// TerminationLimit bounds analysis work per conditional in node-query
	// pairs (0 = unlimited; the paper uses 1000).
	TerminationLimit int
	// ArithSubst enables back-substitution through v := w ± k and v := -w.
	ArithSubst bool
	// ModSummaries consults MOD summary information at call sites.
	ModSummaries bool
	// MaxDuplication is the per-conditional code-growth limit N (0 =
	// unlimited; the paper sweeps 5..200).
	MaxDuplication int
	// FullOnly optimizes only fully correlated conditionals.
	FullOnly bool
	// Compact contracts synthetic no-op nodes after optimization; it never
	// changes program output or operation counts.
	Compact bool
	// Workers bounds the concurrent analysis goroutines of Optimize's
	// analysis phase. 0 and 1 analyze serially; negative values use all
	// CPUs. The optimized program and the report are identical for every
	// worker count (the wall-clock fields of Report.Stats aside).
	Workers int
	// Verify enables differential shadow execution after every applied
	// restructuring: the pre- and post-apply programs are run over
	// VerifyInputs plus built-in input vectors, and any output difference
	// or growth in executed operations rolls that restructuring back with
	// a typed failure on its CondReport. Costs several interpreter runs
	// per applied conditional (see Report.Stats.VerifyRuns).
	Verify bool
	// VerifyInputs supplies workload input streams for Verify.
	VerifyInputs [][]int64
	// Check enables the static verification layer: a forward SCCP oracle
	// cross-checks every demand-driven answer before its restructuring is
	// attempted, and invariant lint passes (unreachable node,
	// use-before-def, must-fail assertion, structural linkage) re-run on
	// every applied restructuring, rolling back any apply that regresses.
	// Unlike Verify no inputs are run, so the static layer covers all paths;
	// the two oracles compose. See Report.Stats' check counters.
	Check bool
	// CheckFatal additionally turns any cross-check disagreement or check
	// veto into an Optimize error after the (fully rolled-back) run
	// completes. It implies Check.
	CheckFatal bool
	// Fold enables the residual constant-branch fold pass: after the
	// correlation rounds settle, the forward CCP oracle classifies every
	// remaining conditional and branches it proves constant — on all
	// executable in-edges, or per-edge for edge-split residuals — are
	// folded inside the same transactional harness, each attempt gated by
	// validation, the invariant passes, shadow execution, and a post-fold
	// oracle re-check. Vetoes roll back with a "fold" failure. See
	// Report.Stats' fold counters.
	Fold bool
	// Timeout bounds the whole optimization run (0 = none). On expiry the
	// program optimized so far is returned and still-queued conditionals
	// are reported Skipped with a "timeout" failure.
	Timeout time.Duration
	// BranchTimeout bounds each conditional's analysis (0 = none).
	BranchTimeout time.Duration
	// Ctx cancels the optimization run early (nil = context.Background()).
	Ctx context.Context
	// SummaryMemo, when non-nil, replaces the run's internal summary memo:
	// seed it with analysis.SummaryMemo.Inject to replay persisted
	// procedure summaries, and harvest it with ExportPristine afterwards.
	// A replayed summary is pair-for-pair identical to a fresh propagation,
	// so the optimized program and report are unchanged (the memo hit
	// counters aside). Only the interprocedural analysis has summaries. The
	// memo must not be shared between concurrent runs.
	SummaryMemo *analysis.SummaryMemo
	// SeedRecords are portable summary records injected into the run's
	// summary memo before the first round — the worker pool's pre-analysis
	// seed. Injection is strict verify-on-read and replay is exact, so
	// seeds accelerate the run without changing the optimized program or
	// the report (Report.Stats.SeedsInjected aside). Ignored for runs
	// without a summary memo (intraprocedural or Scratch).
	SeedRecords []analysis.PortableRecord
	// Scratch disables the cross-round incremental engine (summary memo
	// and root records): every requeued conditional re-analyzes from
	// scratch. The optimized program and report are identical either way;
	// Scratch is the baseline for measuring the incremental speedup.
	Scratch bool
}

// DefaultOptions returns the paper's main configuration: interprocedural
// analysis with MOD summaries, termination limit 1000, no duplication
// limit.
func DefaultOptions() Options {
	return Options{Interprocedural: true, ModSummaries: true, TerminationLimit: 1000}
}

// IntraOptions returns the paper's intraprocedural baseline configuration.
func IntraOptions() Options {
	return Options{Interprocedural: false, ModSummaries: true, TerminationLimit: 1000}
}

func (o Options) analysisOpts() analysis.Options {
	return analysis.Options{
		Interprocedural:  o.Interprocedural,
		TerminationLimit: o.TerminationLimit,
		ArithSubst:       o.ArithSubst,
		ModSummaries:     o.ModSummaries,
		// Summary memoization replays identical closures instead of
		// re-propagating them; results are exact, so there is nothing to
		// configure (only the interprocedural analysis has summaries).
		MemoSummaries: o.Interprocedural,
	}
}

// CondReport describes the optimization outcome for one conditional.
type CondReport struct {
	// Line is the source line of the conditional.
	Line int
	// Analyzable reports the (var relop const) form.
	Analyzable bool
	// Correlated reports that some incoming path determines the outcome;
	// Full reports that every incoming path does.
	Correlated bool
	Full       bool
	// Answers renders the root answer set (e.g. "{T,U}").
	Answers string
	// DupEstimate is the analysis' upper bound on new operation nodes.
	DupEstimate int
	// PairsProcessed is the analysis cost in node-query pairs.
	PairsProcessed int
	// Applied reports that the branch was eliminated along its correlated
	// paths.
	Applied bool
	// Skipped reports that the branch was still queued when the driver's
	// work cap was reached or its deadline expired and was never analyzed
	// (see Report.Truncated).
	Skipped bool
	// FailureKind categorizes a contained failure that rolled this
	// branch's optimization back: "panic", "validate", "diff-mismatch",
	// "op-growth", "timeout", "check" or "fold"; empty when none. The program
	// returned by Optimize never includes a restructuring that failed a gate.
	FailureKind string
	// Err holds the restructuring failure, if any (the detailed
	// BranchFailure when FailureKind is set).
	Err error
}

// DriverStats exposes the optimization driver's cost counters (see
// restructure.DriverStats). All fields except the wall-clock durations are
// deterministic and identical for every worker count.
type DriverStats struct {
	// Workers is the analysis worker count used; Rounds counts
	// analyze/apply rounds.
	Workers int
	Rounds  int
	// Analyses counts per-conditional analysis runs; Reanalyses is the
	// subset repeated because an applied restructuring invalidated a
	// snapshot result.
	Analyses   int
	Reanalyses int
	// Clones counts whole-program clones performed (one defensive input
	// copy plus one per attempted restructuring); ClonesAvoided counts
	// analyzed conditionals that needed none.
	Clones        int
	ClonesAvoided int
	// Failures counts contained per-conditional failures by category
	// ("panic", "validate", "diff-mismatch", "op-growth", "timeout",
	// "check"); nil when the run had none. Every counted failure was
	// rolled back.
	Failures map[string]int
	// SNEMemoEntries and SNEMemoHits count the summary-memo records held at
	// the end of the run and the procedure summaries replayed from them
	// instead of re-propagated; CacheBytes is the memo's memory footprint.
	SNEMemoEntries int
	SNEMemoHits    int64
	CacheBytes     int64
	// SeedsInjected counts portable records accepted from
	// Options.SeedRecords into the run's memo before the first round (the
	// worker pool's pre-analysis seed, post verify-on-read).
	SeedsInjected int
	// QueriesReused counts node–query pairs reconstructed from memo records
	// (summary and root-record replays) instead of re-propagated;
	// SubtreesInvalidated counts cached subtrees dropped because a
	// restructuring dirtied their recorded region. Their ratio against
	// PairsTotal is the incremental engine's reuse rate.
	QueriesReused       int
	SubtreesInvalidated int64
	// PairsTotal mirrors Report.PairsTotal (replayed pairs count in both)
	// so the reuse rate is computable from the stats alone.
	PairsTotal int
	// VerifyRuns counts shadow executions performed by the differential
	// oracle (Options.Verify); VerifyWall is their summed wall time.
	VerifyRuns int
	VerifyWall time.Duration
	// CheckRuns counts static check-layer analyses (Options.Check) and
	// CheckWall their summed wall time. SCCPAgreements and
	// SCCPDisagreements count cross-checked conditionals the SCCP oracle
	// confirmed or contradicted (disagreements are contained "check"
	// failures; a healthy run has zero); SCCPVacuous counts conditionals the
	// oracle proved unreachable, and SCCPDecided every non-vacuous
	// conditional with a full demand-driven answer. SCCPRecall is the graded
	// fraction (agreements+disagreements)/decided. SCCPResidual counts
	// analyzable branches of the final program whose outcome the oracle
	// still decides — constant branches ICBE left in place.
	// CheckFindingsPre/Post count invariant lint findings on the input and
	// final programs.
	CheckRuns         int
	CheckWall         time.Duration
	SCCPAgreements    int
	SCCPDisagreements int
	SCCPVacuous       int
	SCCPDecided       int
	SCCPRecall        float64
	SCCPResidual      int
	CheckFindingsPre  int
	CheckFindingsPost int
	// Fold-pass counters (Options.Fold). FoldAttempted counts gated fold
	// attempts, FoldApplied the adopted subset, and FoldDuplicated the
	// in-edges redirected by edge-split folds. SCCPResidualBefore/After
	// bracket the pass's residual constant-branch count and FoldReduction
	// is (before−after)/before; FoldWall is the pass's wall time. All zero
	// when the pass is disabled.
	FoldAttempted      int
	FoldApplied        int
	FoldDuplicated     int
	SCCPResidualBefore int
	SCCPResidualAfter  int
	FoldReduction      float64
	FoldWall           time.Duration
	// AnalysisWall and ApplyWall are the summed wall-clock times of the
	// concurrent analysis phases and the serial apply phases.
	AnalysisWall time.Duration
	ApplyWall    time.Duration
}

// Report summarizes one Optimize run.
type Report struct {
	Conditionals []CondReport
	// Optimized counts restructured conditionals.
	Optimized int
	// PairsTotal is the total analysis cost.
	PairsTotal int
	// OperationsBefore/After measure static code growth.
	OperationsBefore, OperationsAfter int
	// Truncated reports that the driver's work cap was reached; the
	// skipped conditionals carry Skipped report entries.
	Truncated bool
	// Stats holds the driver's cost counters.
	Stats DriverStats
}

// Optimize applies ICBE (or the intraprocedural baseline) to every
// analyzable conditional with the two-phase driver: conditionals are
// analyzed concurrently against program snapshots (Options.Workers) and the
// accepted restructurings applied serially. The receiver is unmodified; the
// optimized program is returned and is identical for every worker count.
//
// The driver is transactional: a conditional whose restructuring panics,
// fails validation, or (with Options.Verify) diverges under shadow
// execution is rolled back and reported with a FailureKind while the other
// conditionals still optimize. A panic escaping the driver itself is
// recovered here and returned as an error — library callers never crash.
func (p *Program) Optimize(opts Options) (op *Program, rep *Report, err error) {
	return p.OptimizeContext(opts.Ctx, opts)
}

// OptimizeContext is Optimize bound to a context: the context's deadline and
// cancellation propagate into the driver cooperatively (the analysis resolves
// pending queries UNDEF and still-queued conditionals are reported Skipped
// with a timeout failure), so a caller serving requests can cancel a run
// without losing the work already applied. It overrides Options.Ctx.
func (p *Program) OptimizeContext(ctx context.Context, opts Options) (op *Program, rep *Report, err error) {
	opts.Ctx = ctx
	defer func() {
		if r := recover(); r != nil {
			op, rep = nil, nil
			err = fmt.Errorf("icbe: internal error optimizing program: %v\n%s", r, debug.Stack())
		}
	}()
	dr := restructure.Optimize(p.g, restructure.DriverOptions{
		Analysis:       opts.analysisOpts(),
		MaxDuplication: opts.MaxDuplication,
		FullOnly:       opts.FullOnly,
		Workers:        opts.Workers,
		Verify:         opts.Verify,
		VerifyInputs:   opts.VerifyInputs,
		Check:          opts.Check || opts.CheckFatal,
		Fold:           opts.Fold,
		Timeout:        opts.Timeout,
		BranchTimeout:  opts.BranchTimeout,
		Ctx:            opts.Ctx,
		Memo:           opts.SummaryMemo,
		SeedRecords:    opts.SeedRecords,
		Scratch:        opts.Scratch,
	})
	if opts.Compact {
		ir.Simplify(dr.Program)
	}
	rep = &Report{
		Optimized:        dr.Optimized,
		PairsTotal:       dr.PairsTotal,
		OperationsBefore: ir.Collect(p.g).Operations,
		OperationsAfter:  ir.Collect(dr.Program).Operations,
		Truncated:        dr.Truncated,
		Stats: DriverStats{
			Workers:             dr.Stats.Workers,
			Rounds:              dr.Stats.Rounds,
			Analyses:            dr.Stats.Analyses,
			Reanalyses:          dr.Stats.Reanalyses,
			Clones:              dr.Stats.Clones,
			ClonesAvoided:       dr.Stats.ClonesAvoided,
			SNEMemoEntries:      dr.Stats.SNEMemoEntries,
			SNEMemoHits:         dr.Stats.SNEMemoHits,
			CacheBytes:          dr.Stats.CacheBytes,
			SeedsInjected:       dr.Stats.SeedsInjected,
			QueriesReused:       dr.Stats.QueriesReused,
			SubtreesInvalidated: dr.Stats.SubtreesInvalidated,
			PairsTotal:          dr.Stats.PairsTotal,
			VerifyRuns:          dr.Stats.VerifyRuns,
			VerifyWall:          dr.Stats.VerifyWall,
			AnalysisWall:        dr.Stats.AnalysisWall,
			ApplyWall:           dr.Stats.ApplyWall,
			CheckRuns:           dr.Stats.CheckRuns,
			CheckWall:           dr.Stats.CheckWall,
			SCCPAgreements:      dr.Stats.SCCPAgreements,
			SCCPDisagreements:   dr.Stats.SCCPDisagreements,
			SCCPVacuous:         dr.Stats.SCCPVacuous,
			SCCPDecided:         dr.Stats.SCCPDecided,
			SCCPRecall:          dr.Stats.SCCPRecall,
			SCCPResidual:        dr.Stats.SCCPResidual,
			CheckFindingsPre:    dr.Stats.CheckFindingsPre,
			CheckFindingsPost:   dr.Stats.CheckFindingsPost,
			FoldAttempted:       dr.Stats.FoldAttempted,
			FoldApplied:         dr.Stats.FoldApplied,
			FoldDuplicated:      dr.Stats.FoldDuplicated,
			SCCPResidualBefore:  dr.Stats.SCCPResidualBefore,
			SCCPResidualAfter:   dr.Stats.SCCPResidualAfter,
			FoldReduction:       dr.Stats.FoldReduction,
			FoldWall:            dr.Stats.FoldWall,
		},
	}
	for kind, n := range dr.Stats.Failures {
		if rep.Stats.Failures == nil {
			rep.Stats.Failures = make(map[string]int, len(dr.Stats.Failures))
		}
		rep.Stats.Failures[kind.String()] = n
	}
	for _, r := range dr.Reports {
		c := CondReport{
			Line:           r.Line,
			Analyzable:     r.Analyzable,
			Correlated:     r.Answers&(analysis.AnsTrue|analysis.AnsFalse) != 0,
			Full:           r.Full,
			Answers:        r.Answers.String(),
			DupEstimate:    r.DupEstimate,
			PairsProcessed: r.PairsProcessed,
			Applied:        r.Applied,
			Skipped:        r.Skipped,
			Err:            r.Err,
		}
		if r.Failure != nil {
			c.FailureKind = r.Failure.Kind.String()
		}
		rep.Conditionals = append(rep.Conditionals, c)
	}
	if opts.CheckFatal && rep.Stats.Failures["check"] > 0 {
		// The refusals were contained and rolled back; the caller asked for
		// them to be fatal. The program and report are still returned for
		// inspection.
		return &Program{g: dr.Program}, rep,
			fmt.Errorf("icbe: static check layer refused %d conditional(s) (%d oracle disagreements); see CondReport entries with FailureKind %q",
				rep.Stats.Failures["check"], rep.Stats.SCCPDisagreements, "check")
	}
	return &Program{g: dr.Program}, rep, nil
}

// FailureSummary renders the report's contained-failure counts as a stable
// one-line string ("2 validate, 1 timeout"), or "" when the run had none.
func (r *Report) FailureSummary() string {
	if len(r.Stats.Failures) == 0 {
		return ""
	}
	kinds := make([]string, 0, len(r.Stats.Failures))
	for k := range r.Stats.Failures {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	s := ""
	for i, k := range kinds {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d %s", r.Stats.Failures[k], k)
	}
	return s
}

// PredictionHint tells a branch predictor which earlier program point
// decides a conditional's outcome (paper §5, "Assisting hardware branch
// prediction").
type PredictionHint struct {
	// SourceLine is the line of the deciding statement; SourceKind names
	// the correlation source ("branch", "constant", "byte-conversion",
	// "dereference", "allocation").
	SourceLine int
	SourceKind string
	// BranchLine, for branch sources, is the earlier conditional whose
	// outcome predicts this one.
	BranchLine int
	// Outcome is the decided outcome ("true" or "false").
	Outcome string
	// Interprocedural reports that the source lies in another procedure.
	Interprocedural bool
}

// branchOnLine returns the first analyzable conditional on the given source
// line (lowest node ID), or nil when the line has none.
func (p *Program) branchOnLine(line int) *ir.Node {
	var target *ir.Node
	p.g.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && n.Analyzable() && n.Line == line {
			if target == nil || n.ID < target.ID {
				target = n
			}
		}
	})
	return target
}

// PredictionHints analyzes the first analyzable conditional on the given
// source line and returns its statically detected correlation sources as
// predictor directives.
func (p *Program) PredictionHints(line int, opts Options) []PredictionHint {
	target := p.branchOnLine(line)
	if target == nil {
		return nil
	}
	res := analysis.New(p.g, opts.analysisOpts()).AnalyzeBranch(target.ID)
	if res == nil {
		return nil
	}
	var hints []PredictionHint
	for _, s := range res.CorrelationSources(p.g) {
		h := PredictionHint{
			SourceLine:      p.g.Node(s.Node).Line,
			SourceKind:      s.Kind.String(),
			Interprocedural: !s.SameProc,
		}
		if s.Answer&analysis.AnsTrue != 0 {
			h.Outcome = "true"
		} else {
			h.Outcome = "false"
		}
		if s.Branch != ir.NoNode {
			h.BranchLine = p.g.Node(s.Branch).Line
		}
		hints = append(hints, h)
	}
	return hints
}

// InlinePriority scores a procedure for correlation-directed inlining
// (paper §5, "Procedure inlining"): procedures whose bodies decide other
// procedures' conditionals are the profitable inlining candidates.
type InlinePriority struct {
	Procedure string
	// Conditionals counts branches whose correlation crosses this
	// procedure; Weight adds profile-weighted benefit when a profiled run
	// was supplied.
	Conditionals int
	Weight       int64
}

// InliningPriorities ranks procedures by the interprocedural correlation
// they generate. Pass a RunResult from RunProfiled to weight by execution
// counts, or nil to count statically.
func (p *Program) InliningPriorities(opts Options, profiled *RunResult) []InlinePriority {
	var exec map[ir.NodeID]int64
	if profiled != nil && profiled.NodeCounts != nil {
		exec = make(map[ir.NodeID]int64, len(profiled.NodeCounts))
		for id, c := range profiled.NodeCounts {
			exec[ir.NodeID(id)] = c
		}
	}
	var out []InlinePriority
	for _, pp := range analysis.InliningPriorities(p.g, opts.analysisOpts(), exec) {
		out = append(out, InlinePriority{Procedure: pp.Name, Conditionals: pp.Conds, Weight: pp.Weight})
	}
	return out
}

// AnalyzeConditional runs the correlation analysis for the branch at the
// given source line (the first analyzable branch on that line) and returns
// its report without restructuring. It returns false when no analyzable
// branch exists on the line.
func (p *Program) AnalyzeConditional(line int, opts Options) (CondReport, bool) {
	target := p.branchOnLine(line)
	if target == nil {
		return CondReport{}, false
	}
	res := analysis.New(p.g, opts.analysisOpts()).AnalyzeBranch(target.ID)
	if res == nil {
		return CondReport{}, false
	}
	return CondReport{
		Line:           line,
		Analyzable:     true,
		Correlated:     res.HasCorrelation(),
		Full:           res.FullCorrelation(),
		Answers:        res.RootAnswers().String(),
		DupEstimate:    res.DuplicationEstimate(p.g),
		PairsProcessed: res.PairsProcessed,
	}, true
}
