package icbe

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"icbe/internal/progs"
	"icbe/internal/randprog"
)

// update regenerates the equivalence goldens under testdata/equivalence/.
// The goldens were produced by the pre-index map-based analysis and pin the
// full observable Report (answers, pair counts, restructuring decisions,
// optimized-program hash, executed output): any representation change in the
// analysis core must reproduce them byte for byte.
var update = flag.Bool("update", false, "rewrite equivalence golden files")

// equivalenceSeeds mirrors the FuzzOptimize seed corpus so the goldens cover
// the same generated programs the differential fuzzer exercises.
var equivalenceSeeds = []uint64{0, 1, 2, 3, 7, 11, 42, 99, 1234, 0xdeadbeef}

// renderEquivalence runs one full Optimize and renders every deterministic
// observable into a canonical text form: the per-conditional reports, the
// run totals, a hash of the optimized ICFG, and the optimized program's
// behavior on the given inputs. Wall-clock stats and Workers are excluded —
// everything rendered here is contractually identical across worker counts.
func renderEquivalence(t *testing.T, src string, inputs [][]int64, opts Options) string {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opt, rep, err := p.Optimize(opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	var b strings.Builder
	for _, c := range rep.Conditionals {
		fmt.Fprintf(&b, "cond line=%d analyzable=%v correlated=%v full=%v answers=%s dup=%d pairs=%d applied=%v skipped=%v failure=%q\n",
			c.Line, c.Analyzable, c.Correlated, c.Full, c.Answers, c.DupEstimate,
			c.PairsProcessed, c.Applied, c.Skipped, c.FailureKind)
	}
	fmt.Fprintf(&b, "optimized=%d pairsTotal=%d opsBefore=%d opsAfter=%d truncated=%v\n",
		rep.Optimized, rep.PairsTotal, rep.OperationsBefore, rep.OperationsAfter, rep.Truncated)
	fmt.Fprintf(&b, "analyses=%d reanalyses=%d clones=%d clonesAvoided=%d failures=%q\n",
		rep.Stats.Analyses, rep.Stats.Reanalyses, rep.Stats.Clones, rep.Stats.ClonesAvoided,
		rep.FailureSummary())
	if opts.Fold {
		// Only rendered when the fold pass ran, so the pre-fold goldens stay
		// byte-identical.
		fmt.Fprintf(&b, "fold attempted=%d applied=%d duplicated=%d residual=%d->%d\n",
			rep.Stats.FoldAttempted, rep.Stats.FoldApplied, rep.Stats.FoldDuplicated,
			rep.Stats.SCCPResidualBefore, rep.Stats.SCCPResidualAfter)
	}
	fmt.Fprintf(&b, "programSHA=%x\n", sha256.Sum256([]byte(opt.Dump())))
	for _, in := range inputs {
		res, err := opt.Run(in)
		if err != nil {
			fmt.Fprintf(&b, "run input=%v err=%v\n", in, err)
			continue
		}
		fmt.Fprintf(&b, "run input=%v output=%v ops=%d conds=%d\n", in, res.Output, res.Operations, res.Conditionals)
	}
	return b.String()
}

// equivalenceConfigs are the option sets pinned by the goldens. Verify stays
// off (it never changes the outcome on these corpora, only stats) and the
// paper's termination limit stays at its default so the analysis runs
// untruncated, where its results are worker-count independent.
func equivalenceConfigs() map[string]Options {
	inter := DefaultOptions()
	intra := IntraOptions()
	limited := DefaultOptions()
	limited.MaxDuplication = 100
	return map[string]Options{"inter": inter, "intra": intra, "dup100": limited}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "equivalence", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run TestEquivalence -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("output diverged from the map-based seed analysis\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestScratchIncrementalEquivalence asserts the incremental engine is
// invisible in every observable: a driver run with the cross-round engine
// disabled (Options.Scratch) renders byte-identically — per-conditional
// reports, counters, optimized-program hash, executed behavior — to the
// default incremental run, for every workload, generated program, and worker
// count. The incremental engine may only change the cost of an answer,
// never the answer.
func TestScratchIncrementalEquivalence(t *testing.T) {
	type workload struct {
		name   string
		src    string
		inputs [][]int64
	}
	var cases []workload
	for _, w := range progs.All() {
		cases = append(cases, workload{name: w.Name, src: w.Source, inputs: [][]int64{w.Train, w.Ref}})
	}
	fuzzInputs := [][]int64{nil, {1, 2, 3}, {-5, 0, 7, 9, 1 << 40}}
	for _, seed := range equivalenceSeeds {
		cases = append(cases, workload{
			name:   fmt.Sprintf("randprog-%d", seed),
			src:    randprog.Generate(seed, fuzzConfig),
			inputs: fuzzInputs,
		})
	}
	// Reduced deep-recursion instances: cyclic call graphs whose summaries
	// settle by fixed point, the entry/exit-splitting stress shape.
	for _, seed := range recursionSeeds {
		cases = append(cases, workload{
			name:   fmt.Sprintf("recursion-%d", seed),
			src:    randprog.Recursion(seed, randprog.RecConfig{}),
			inputs: [][]int64{{0}, {5}, {-3}},
		})
	}
	// A reduced hub-and-leaf scale program, so the shape the stress
	// benchmark gates on is pinned by the equivalence contract too.
	scaleCfg := randprog.ScaleConfig{
		Globals: 3, Leaves: 12, LeafStmts: 30, Hubs: 5, Calls: 5, Conds: 3,
		ChainLeaves: 2, ChainLen: 2,
	}
	for _, seed := range []uint64{1, 7} {
		cases = append(cases, workload{
			name:   fmt.Sprintf("scale-%d", seed),
			src:    randprog.Scale(seed, scaleCfg),
			inputs: [][]int64{{0}, {5}},
		})
	}
	for _, w := range cases {
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			golden := ""
			for _, workers := range []int{1, 4, -1} {
				opts := DefaultOptions()
				opts.Timeout = 2 * time.Minute
				opts.Workers = workers
				opts.Scratch = true
				want := renderEquivalence(t, w.src, w.inputs, opts)
				opts.Scratch = false
				got := renderEquivalence(t, w.src, w.inputs, opts)
				if got != want {
					t.Errorf("workers=%d: incremental run diverged from scratch:\n--- scratch\n%s--- incremental\n%s",
						workers, want, got)
				}
				if golden == "" {
					golden = want
				} else if want != golden {
					t.Errorf("workers=%d: scratch run diverged from workers=1", workers)
				}
			}
		})
	}
}

// TestEquivalenceGolden asserts the analysis + restructuring pipeline
// produces byte-identical reports and optimized programs to the seed
// map-based implementation, across every benchmark workload and the fuzz
// seed corpus, for serial and parallel drivers alike.
func TestEquivalenceGolden(t *testing.T) {
	type workload struct {
		name   string
		src    string
		inputs [][]int64
	}
	var cases []workload
	for _, w := range progs.All() {
		cases = append(cases, workload{name: w.Name, src: w.Source, inputs: [][]int64{w.Train, w.Ref}})
	}
	fuzzInputs := [][]int64{nil, {1, 2, 3}, {-5, 0, 7, 9, 1 << 40}}
	for _, seed := range equivalenceSeeds {
		cases = append(cases, workload{
			name:   fmt.Sprintf("randprog-%d", seed),
			src:    randprog.Generate(seed, fuzzConfig),
			inputs: fuzzInputs,
		})
	}
	for _, seed := range recursionSeeds {
		cases = append(cases, workload{
			name:   fmt.Sprintf("recursion-%d", seed),
			src:    randprog.Recursion(seed, randprog.RecConfig{}),
			inputs: [][]int64{{0}, {5}, {-3}},
		})
	}
	configs := equivalenceConfigs()
	for cfgName, base := range configs {
		for _, w := range cases {
			t.Run(cfgName+"/"+w.name, func(t *testing.T) {
				t.Parallel()
				opts := base
				opts.Timeout = 2 * time.Minute
				golden := ""
				for _, workers := range []int{1, 4, -1} {
					opts.Workers = workers
					got := renderEquivalence(t, w.src, w.inputs, opts)
					if golden == "" {
						golden = got
						checkGolden(t, cfgName+"-"+w.name, got)
						continue
					}
					if got != golden {
						t.Errorf("workers=%d diverged from workers=1:\n--- workers=1\n%s--- workers=%d\n%s",
							workers, golden, workers, got)
					}
				}
			})
		}
	}
}
