module icbe

go 1.22
